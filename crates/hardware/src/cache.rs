//! The multi-core L1 data-cache system with MESI coherence.
//!
//! This is the substrate LCR records from: every retired load/store first
//! *observes* the MESI state its line currently has in the accessing core's
//! L1 (`Invalid` when absent), which is precisely the event family of the
//! paper's Table 2, and then the access updates the caches under MESI:
//!
//! * load hit — state unchanged;
//! * load miss — line installed `Shared` when any other core holds it
//!   (demoting their `Modified`/`Exclusive` copies to `Shared`), otherwise
//!   `Exclusive`;
//! * store hit — line promoted to `Modified`, all other copies invalidated;
//! * store miss — line installed `Modified`, all other copies invalidated.
//!
//! Sets use true-LRU replacement. Evictions are silent, so a later access
//! observes `Invalid` even without remote writes — the false-positive noise
//! source §5.3 of the paper calls out (and which the statistical ranking
//! filters).
//!
//! Geometry defaults to the paper's simulator (§6): 2-way associative,
//! 64-byte blocks, 64 KB per core.

use stm_machine::events::{AccessKind, CoherenceState};
use stm_machine::ids::CoreId;

/// Stable (non-Invalid) MESI states a held line can be in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeldState {
    /// Locally modified, dirty, sole copy.
    Modified,
    /// Clean, sole copy.
    Exclusive,
    /// Clean, possibly replicated.
    Shared,
}

impl From<HeldState> for CoherenceState {
    fn from(s: HeldState) -> CoherenceState {
        match s {
            HeldState::Modified => CoherenceState::Modified,
            HeldState::Exclusive => CoherenceState::Exclusive,
            HeldState::Shared => CoherenceState::Shared,
        }
    }
}

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Block (line) size in bytes.
    pub line_bytes: u64,
    /// Total capacity per core in bytes.
    pub total_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// The configuration of the paper's LCR simulator (§6): 2-way, 64-byte
    /// blocks, 64 KB per core.
    pub const PAPER: CacheConfig = CacheConfig {
        line_bytes: 64,
        total_bytes: 64 * 1024,
        ways: 2,
    };

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        (self.total_bytes / self.line_bytes / self.ways as u64).max(1)
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::PAPER
    }
}

#[derive(Debug, Clone, Copy)]
struct LineEntry {
    tag: u64,
    state: HeldState,
    lru: u64,
}

#[derive(Debug, Clone)]
struct CoreCache {
    sets: Vec<Vec<LineEntry>>,
}

/// The coherent multi-core L1 system.
#[derive(Debug, Clone)]
pub struct CacheSystem {
    cfg: CacheConfig,
    cores: Vec<CoreCache>,
    tick: u64,
    evictions: u64,
    invalidations: u64,
}

impl CacheSystem {
    /// Creates a cache system with `num_cores` cores.
    pub fn new(num_cores: u32, cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets() as usize;
        CacheSystem {
            cfg,
            cores: (0..num_cores.max(1))
                .map(|_| CoreCache {
                    sets: vec![Vec::new(); sets],
                })
                .collect(),
            tick: 0,
            evictions: 0,
            invalidations: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Restores the exactly-fresh state (every line invalid, statistics
    /// zeroed) while keeping all per-set allocations — rebuilding a cache
    /// system allocates one `Vec` per set per core, which dominates run
    /// setup when runs are short.
    pub fn reset(&mut self) {
        for core in &mut self.cores {
            for set in &mut core.sets {
                set.clear();
            }
        }
        self.tick = 0;
        self.evictions = 0;
        self.invalidations = 0;
    }

    /// Number of cores.
    pub fn num_cores(&self) -> u32 {
        self.cores.len() as u32
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.cfg.num_sets()) as usize
    }

    /// Performs an access from `core` and returns the MESI state the
    /// access *observed* (prior to any state change), per Table 2.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: CoreId, addr: u64, kind: AccessKind) -> CoherenceState {
        self.tick += 1;
        let tick = self.tick;
        let line = self.line_of(addr);
        let set = self.set_of(line);
        let ci = core.index();
        assert!(ci < self.cores.len(), "core {core} out of range");

        let local = self.cores[ci].sets[set].iter().position(|e| e.tag == line);
        let observed = match local {
            Some(i) => CoherenceState::from(self.cores[ci].sets[set][i].state),
            None => CoherenceState::Invalid,
        };

        match kind {
            AccessKind::Load => match local {
                Some(i) => {
                    self.cores[ci].sets[set][i].lru = tick;
                }
                None => {
                    // Demote remote copies; shared if any existed.
                    let mut remote = false;
                    for (oi, other) in self.cores.iter_mut().enumerate() {
                        if oi == ci {
                            continue;
                        }
                        for e in other.sets[set].iter_mut() {
                            if e.tag == line {
                                remote = true;
                                e.state = HeldState::Shared;
                            }
                        }
                    }
                    let state = if remote {
                        HeldState::Shared
                    } else {
                        HeldState::Exclusive
                    };
                    self.install(ci, set, line, state, tick);
                }
            },
            AccessKind::Store => {
                // Invalidate every remote copy.
                for (oi, other) in self.cores.iter_mut().enumerate() {
                    if oi == ci {
                        continue;
                    }
                    let before = other.sets[set].len();
                    other.sets[set].retain(|e| e.tag != line);
                    self.invalidations += (before - other.sets[set].len()) as u64;
                }
                match local {
                    Some(i) => {
                        let e = &mut self.cores[ci].sets[set][i];
                        e.state = HeldState::Modified;
                        e.lru = tick;
                    }
                    None => {
                        self.install(ci, set, line, HeldState::Modified, tick);
                    }
                }
            }
        }
        observed
    }

    fn install(&mut self, core: usize, set: usize, tag: u64, state: HeldState, tick: u64) {
        let ways = self.cfg.ways;
        let entries = &mut self.cores[core].sets[set];
        if entries.len() >= ways {
            // Evict true-LRU (silently; dirty writeback is not modelled —
            // only coherence states matter to LCR).
            let (victim, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("non-empty set");
            entries.swap_remove(victim);
            self.evictions += 1;
        }
        entries.push(LineEntry {
            tag,
            state,
            lru: tick,
        });
    }

    /// Total lines evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total remote invalidations so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// The state `core` currently holds for the line containing `addr`.
    pub fn state_of(&self, core: CoreId, addr: u64) -> CoherenceState {
        let line = self.line_of(addr);
        let set = self.set_of(line);
        self.cores[core.index()].sets[set]
            .iter()
            .find(|e| e.tag == line)
            .map(|e| CoherenceState::from(e.state))
            .unwrap_or(CoherenceState::Invalid)
    }

    /// Checks the MESI single-writer/multi-reader invariants for every
    /// line currently cached anywhere. Used by property tests.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut holders: HashMap<u64, Vec<HeldState>> = HashMap::new();
        for core in &self.cores {
            for set in &core.sets {
                for e in set {
                    holders.entry(e.tag).or_default().push(e.state);
                }
            }
        }
        for (line, states) in holders {
            let m = states.iter().filter(|s| **s == HeldState::Modified).count();
            let e = states
                .iter()
                .filter(|s| **s == HeldState::Exclusive)
                .count();
            if m + e > 1 || ((m + e == 1) && states.len() > 1) {
                return Err(format!(
                    "line {line:#x}: M/E copy coexists with other copies: {states:?}"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::events::AccessKind::{Load, Store};

    fn sys(cores: u32) -> CacheSystem {
        CacheSystem::new(cores, CacheConfig::PAPER)
    }

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);

    #[test]
    fn cold_load_observes_invalid_then_exclusive() {
        let mut s = sys(2);
        assert_eq!(s.access(C0, 0x1000, Load), CoherenceState::Invalid);
        assert_eq!(s.access(C0, 0x1000, Load), CoherenceState::Exclusive);
    }

    #[test]
    fn second_core_load_shares_the_line() {
        let mut s = sys(2);
        s.access(C0, 0x1000, Load);
        assert_eq!(s.access(C1, 0x1000, Load), CoherenceState::Invalid);
        // Both copies now shared.
        assert_eq!(s.access(C0, 0x1000, Load), CoherenceState::Shared);
        assert_eq!(s.access(C1, 0x1000, Load), CoherenceState::Shared);
    }

    #[test]
    fn store_invalidates_remote_copies() {
        let mut s = sys(2);
        s.access(C0, 0x1000, Load);
        s.access(C1, 0x1000, Load);
        s.access(C1, 0x1000, Store);
        // C0 lost its copy: the next load observes Invalid.
        assert_eq!(s.access(C0, 0x1000, Load), CoherenceState::Invalid);
        assert!(s.invalidations() >= 1);
    }

    #[test]
    fn store_hit_promotes_to_modified() {
        let mut s = sys(2);
        s.access(C0, 0x1000, Load); // E
        assert_eq!(s.access(C0, 0x1000, Store), CoherenceState::Exclusive);
        assert_eq!(s.access(C0, 0x1000, Load), CoherenceState::Modified);
    }

    #[test]
    fn remote_load_demotes_modified_to_shared() {
        let mut s = sys(2);
        s.access(C0, 0x1000, Store); // M in C0
        assert_eq!(s.access(C1, 0x1000, Load), CoherenceState::Invalid);
        assert_eq!(s.access(C0, 0x1000, Load), CoherenceState::Shared);
    }

    #[test]
    fn same_line_accesses_alias() {
        let mut s = sys(1);
        s.access(C0, 0x1000, Load);
        // Same 64-byte line.
        assert_eq!(s.access(C0, 0x103f, Load), CoherenceState::Exclusive);
        // Next line is cold.
        assert_eq!(s.access(C0, 0x1040, Load), CoherenceState::Invalid);
    }

    #[test]
    fn lru_eviction_in_a_2way_set() {
        let mut s = sys(1);
        let sets = CacheConfig::PAPER.num_sets();
        let stride = 64 * sets; // same set, different tags
        s.access(C0, 0, Load); // way 1
        s.access(C0, stride, Load); // way 2
        s.access(C0, 0, Load); // refresh line 0
        s.access(C0, 2 * stride, Load); // evicts `stride` (LRU)
        assert_eq!(s.evictions(), 1);
        assert_eq!(s.access(C0, 0, Load), CoherenceState::Exclusive);
        // The evicted line is gone; probing it misses (and evicts again).
        assert_eq!(s.access(C0, stride, Load), CoherenceState::Invalid);
        assert_eq!(s.evictions(), 2);
    }

    #[test]
    fn false_sharing_surfaces_as_invalidation() {
        // Two "variables" in one line: a write to one invalidates the
        // other's copy — the false-sharing noise of §5.3.
        let mut s = sys(2);
        s.access(C0, 0x2000, Load);
        s.access(C1, 0x2008, Store); // same line, different word
        assert_eq!(s.access(C0, 0x2000, Load), CoherenceState::Invalid);
    }

    #[test]
    fn invariants_hold_through_a_random_workout() {
        use stm_machine::rng::SplitMix64;
        let mut s = sys(4);
        let mut rng = SplitMix64::new(42);
        for _ in 0..20_000 {
            let core = CoreId((rng.next_below(4)) as u32);
            let addr = rng.next_below(1 << 20);
            let kind = if rng.next_below(4) == 0 { Store } else { Load };
            s.access(core, addr, kind);
        }
        s.check_invariants().unwrap();
    }
}
