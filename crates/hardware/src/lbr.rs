//! The Last Branch Record (LBR) facility.
//!
//! A circular ring of the last *N* taken branches, per core, with the
//! `LBR_SELECT`-style class/privilege filtering of the paper's Table 1.
//! Recording is enabled and disabled through the context's control
//! interface (the analogue of `IA32_DEBUGCTL`); once enabled, every retired
//! branch admitted by the filter evicts the oldest record.

use std::collections::VecDeque;
use stm_machine::events::{lbr_select, lbr_select_admits, BranchEvent, BranchRecord};

/// Number of LBR entries on the Nehalem microarchitecture the paper
/// evaluates on (§2.1; 4 on Pentium 4, 8 on Pentium M, 16 on Nehalem).
pub const NEHALEM_ENTRIES: usize = 16;

/// One core's LBR stack.
#[derive(Debug, Clone)]
pub struct Lbr {
    capacity: usize,
    ring: VecDeque<BranchRecord>,
    enabled: bool,
    select: u32,
}

impl Lbr {
    /// Creates a disabled LBR with the given number of entries and the
    /// diagnosis filter mask preloaded.
    ///
    /// # Panics
    ///
    /// Panics on a zero `capacity`: a branch ring with no entries is a
    /// configuration bug, not a degenerate ring. Validate configurations
    /// up front with [`HwConfig::validate`](crate::HwConfig::validate),
    /// which reports the error instead of panicking.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LBR capacity must be positive");
        Lbr {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            enabled: false,
            select: lbr_select::DIAGNOSIS,
        }
    }

    /// Number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The current `LBR_SELECT` mask.
    pub fn select(&self) -> u32 {
        self.select
    }

    /// Programs the `LBR_SELECT` filter mask (set bit = exclude class).
    pub fn config(&mut self, select: u32) {
        self.select = select;
    }

    /// Clears all records (`DRIVER_CLEAN_LBR`).
    pub fn clean(&mut self) {
        self.ring.clear();
    }

    /// Starts recording (`DRIVER_ENABLE_LBR`).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops recording (`DRIVER_DISABLE_LBR`).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Offers a retired branch to the ring; records it when enabled and
    /// admitted by the filter.
    pub fn record(&mut self, ev: BranchEvent) {
        if self.push(ev) {
            stm_telemetry::counter!("hw.lbr.pushes").incr();
        }
    }

    /// The telemetry-free push underneath [`Lbr::record`] — the batch
    /// ingest path counts admitted pushes itself and reports them in one
    /// counter add per batch. Returns whether the branch was recorded.
    pub fn push(&mut self, ev: BranchEvent) -> bool {
        if !self.enabled || !lbr_select_admits(self.select, &ev) {
            return false;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(ev.into());
        true
    }

    /// Reads the stack, most recent branch first (`DRIVER_PROFILE_LBR`).
    pub fn snapshot(&self) -> Vec<BranchRecord> {
        stm_telemetry::counter!("hw.lbr.snapshots").incr();
        stm_telemetry::histogram!("hw.lbr.snapshot_records").record(self.ring.len() as u64);
        stm_telemetry::instant("hw.lbr.snapshot", "hardware");
        self.read()
    }

    /// The telemetry-free ring read underneath [`Lbr::snapshot`]. The
    /// control path uses it to defer the copy until the perturbation
    /// layer has decided the read is not lost.
    pub fn read(&self) -> Vec<BranchRecord> {
        self.ring.iter().rev().copied().collect()
    }

    /// Restores the exactly-fresh state (empty, disabled, diagnosis
    /// filter) while keeping the ring's allocation.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.enabled = false;
        self.select = lbr_select::DIAGNOSIS;
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no records are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

impl Default for Lbr {
    fn default() -> Self {
        Lbr::new(NEHALEM_ENTRIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::events::{BranchKind, Ring};

    fn cond(from: u64) -> BranchEvent {
        BranchEvent {
            from,
            to: from + 0x10,
            kind: BranchKind::CondJump,
            ring: Ring::User,
        }
    }

    #[test]
    fn disabled_lbr_records_nothing() {
        let mut lbr = Lbr::new(4);
        lbr.record(cond(1));
        assert!(lbr.is_empty());
    }

    #[test]
    fn ring_evicts_oldest_and_snapshots_newest_first() {
        let mut lbr = Lbr::new(4);
        lbr.enable();
        for i in 0..6 {
            lbr.record(cond(i));
        }
        let snap = lbr.snapshot();
        assert_eq!(snap.len(), 4);
        let froms: Vec<u64> = snap.iter().map(|r| r.from).collect();
        assert_eq!(froms, vec![5, 4, 3, 2]);
    }

    #[test]
    fn filter_excludes_kernel_branches() {
        let mut lbr = Lbr::new(4);
        lbr.enable();
        lbr.record(BranchEvent {
            ring: Ring::Kernel,
            ..cond(1)
        });
        assert!(lbr.is_empty());
        lbr.record(cond(2));
        assert_eq!(lbr.len(), 1);
    }

    #[test]
    fn filter_excludes_calls_and_returns_under_diagnosis_mask() {
        let mut lbr = Lbr::new(8);
        lbr.enable();
        for kind in [
            BranchKind::NearRelCall,
            BranchKind::NearIndCall,
            BranchKind::NearReturn,
            BranchKind::UncondIndirect,
            BranchKind::Far,
        ] {
            lbr.record(BranchEvent { kind, ..cond(9) });
        }
        assert!(lbr.is_empty());
        lbr.record(BranchEvent {
            kind: BranchKind::UncondRelative,
            ..cond(10)
        });
        assert_eq!(lbr.len(), 1);
    }

    #[test]
    fn open_mask_records_everything() {
        let mut lbr = Lbr::new(8);
        lbr.config(0);
        lbr.enable();
        lbr.record(BranchEvent {
            kind: BranchKind::NearRelCall,
            ring: Ring::Kernel,
            ..cond(3)
        });
        assert_eq!(lbr.len(), 1);
    }

    #[test]
    fn clean_resets_without_touching_enable_state() {
        let mut lbr = Lbr::new(4);
        lbr.enable();
        lbr.record(cond(1));
        lbr.clean();
        assert!(lbr.is_empty());
        assert!(lbr.is_enabled());
        lbr.record(cond(2));
        assert_eq!(lbr.len(), 1);
    }

    #[test]
    fn disable_freezes_contents() {
        let mut lbr = Lbr::new(4);
        lbr.enable();
        lbr.record(cond(1));
        lbr.disable();
        lbr.record(cond(2));
        assert_eq!(lbr.snapshot()[0].from, 1);
    }

    #[test]
    fn default_is_nehalem_sized() {
        assert_eq!(Lbr::default().capacity(), 16);
    }

    #[test]
    #[should_panic(expected = "LBR capacity must be positive")]
    fn zero_capacity_is_rejected_not_clamped() {
        let _ = Lbr::new(0);
    }

    #[test]
    fn one_entry_ring_is_legal_and_keeps_newest() {
        let mut lbr = Lbr::new(1);
        lbr.enable();
        lbr.record(cond(1));
        lbr.record(cond(2));
        assert_eq!(lbr.snapshot()[0].from, 2);
    }
}
