//! The Branch Trace Store (BTS) facility.
//!
//! Unlike LBR's fixed ring of registers, BTS streams *every* admitted
//! branch record into a memory-resident buffer (§2.1). It can hold far more
//! history, but on real hardware the memory traffic costs 20–100% run-time
//! overhead, which is why the paper rejects it for production runs. The
//! `bts_overhead` harness (experiment E8) reproduces that contrast: the
//! per-branch buffer append is the overhead the paper talks about.

use std::collections::VecDeque;
use stm_machine::events::{lbr_select_admits, BranchEvent, BranchRecord};

/// A whole-execution branch trace buffer.
#[derive(Debug, Clone, Default)]
pub struct Bts {
    buffer: VecDeque<BranchRecord>,
    enabled: bool,
    select: u32,
    limit: Option<usize>,
}

impl Bts {
    /// Creates a disabled BTS with no class filtering and no size limit.
    pub fn new() -> Self {
        Bts::default()
    }

    /// Creates a BTS that keeps at most `limit` records (an OS-provided
    /// ring buffer, as used by the Intel GDB branch tracing).
    pub fn with_limit(limit: usize) -> Self {
        Bts {
            limit: Some(limit.max(1)),
            ..Bts::default()
        }
    }

    /// Programs the class filter (same semantics as `LBR_SELECT`).
    pub fn config(&mut self, select: u32) {
        self.select = select;
    }

    /// Starts tracing.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops tracing.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether tracing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Clears the buffer.
    pub fn clean(&mut self) {
        self.buffer.clear();
    }

    /// Offers a retired branch to the trace.
    pub fn record(&mut self, ev: BranchEvent) {
        if self.push(ev) {
            stm_telemetry::counter!("hw.bts.pushes").incr();
        }
    }

    /// The telemetry-free append underneath [`Bts::record`] — the batch
    /// ingest path counts admitted appends itself. Returns whether the
    /// branch was recorded.
    pub fn push(&mut self, ev: BranchEvent) -> bool {
        if !self.enabled || !lbr_select_admits(self.select, &ev) {
            return false;
        }
        if let Some(limit) = self.limit {
            if self.buffer.len() == limit {
                self.buffer.pop_front();
            }
        }
        self.buffer.push_back(ev.into());
        true
    }

    /// Appends a whole batch of retired branches in one call — the
    /// `Hardware::on_batch` fast path. Equivalent to calling [`Bts::push`]
    /// once per event: the filter admits the same records, and under a
    /// size limit the buffer ends up holding the last `limit` admitted
    /// records. Returns how many records were admitted.
    pub fn push_batch(&mut self, events: impl IntoIterator<Item = BranchEvent>) -> u64 {
        if !self.enabled {
            return 0;
        }
        let select = self.select;
        let before = self.buffer.len();
        self.buffer.extend(
            events
                .into_iter()
                .filter(|ev| lbr_select_admits(select, ev))
                .map(BranchRecord::from),
        );
        let pushed = (self.buffer.len() - before) as u64;
        if let Some(limit) = self.limit {
            let excess = self.buffer.len().saturating_sub(limit);
            if excess > 0 {
                self.buffer.drain(..excess);
            }
        }
        pushed
    }

    /// The trace, oldest branch first.
    pub fn trace(&self) -> Vec<BranchRecord> {
        self.buffer.iter().copied().collect()
    }

    /// Number of records held.
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::events::{BranchKind, Ring};

    fn ev(from: u64) -> BranchEvent {
        BranchEvent {
            from,
            to: from + 4,
            kind: BranchKind::CondJump,
            ring: Ring::User,
        }
    }

    #[test]
    fn bts_keeps_whole_history() {
        let mut bts = Bts::new();
        bts.enable();
        for i in 0..1000 {
            bts.record(ev(i));
        }
        assert_eq!(bts.len(), 1000);
        assert_eq!(bts.trace()[0].from, 0);
        assert_eq!(bts.trace()[999].from, 999);
    }

    #[test]
    fn limited_bts_drops_oldest() {
        let mut bts = Bts::with_limit(3);
        bts.enable();
        for i in 0..5 {
            bts.record(ev(i));
        }
        let froms: Vec<u64> = bts.trace().iter().map(|r| r.from).collect();
        assert_eq!(froms, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_bts_records_nothing() {
        let mut bts = Bts::new();
        bts.record(ev(1));
        assert!(bts.is_empty());
    }

    #[test]
    fn filter_applies() {
        let mut bts = Bts::new();
        bts.config(stm_machine::events::lbr_select::JCC);
        bts.enable();
        bts.record(ev(1));
        assert!(bts.is_empty());
    }

    #[test]
    fn push_batch_matches_per_event_pushes() {
        // Unlimited, limited (forcing wrap mid-batch) and filtered BTSes
        // must end with the same buffer and the same admit count whether
        // the stream arrives one event or one batch at a time.
        let configs: &[(Option<usize>, u32)] = &[
            (None, 0),
            (Some(3), 0),
            (Some(7), stm_machine::events::lbr_select::JCC),
        ];
        for &(limit, select) in configs {
            let mut one = limit.map(Bts::with_limit).unwrap_or_default();
            let mut batch = one.clone();
            one.config(select);
            batch.config(select);
            one.enable();
            batch.enable();
            let events: Vec<BranchEvent> = (0..20).map(ev).collect();
            let mut per_event = 0u64;
            for e in &events {
                if one.push(*e) {
                    per_event += 1;
                }
            }
            let batched = batch.push_batch(events.iter().copied());
            assert_eq!(per_event, batched, "limit={limit:?} select={select}");
            assert_eq!(one.trace(), batch.trace(), "limit={limit:?}");
        }
    }

    #[test]
    fn disabled_push_batch_admits_nothing() {
        let mut bts = Bts::new();
        assert_eq!(bts.push_batch((0..5).map(ev)), 0);
        assert!(bts.is_empty());
    }
}
