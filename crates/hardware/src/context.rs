//! The assembled performance-monitoring unit: per-core LBRs, the coherent
//! cache system feeding per-thread LCRs, performance counters, an optional
//! BTS and an optional PBI-style sampler — all behind the machine's
//! [`Hardware`] trait.

use crate::bts::Bts;
use crate::cache::{CacheConfig, CacheSystem};
use crate::counters::{CoherenceSampler, PerfCounters};
use crate::lbr::{Lbr, NEHALEM_ENTRIES};
use crate::lcr::{Lcr, DEFAULT_ENTRIES};
use crate::perturb::{PerturbConfig, PerturbLayer};
use std::fmt;
use stm_machine::events::{
    AccessEvent, BranchEvent, CtlResponse, Hardware, HwCtlOp, HwEvent, LcrConfig, Ring,
};
use stm_machine::ids::{CoreId, ThreadId};

/// A rejected hardware configuration, reported by [`HwConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HwConfigError {
    /// `lbr_entries` was zero — a branch ring needs at least one entry.
    ZeroLbrEntries,
    /// `lcr_entries` was zero — a coherence ring needs at least one entry.
    ZeroLcrEntries,
    /// A perturbation asked to truncate a ring to zero records; model a
    /// total blackout with a drop or loss rate of 1.0 instead.
    ZeroTruncation {
        /// Which ring the truncation targeted (`"lbr"` or `"lcr"`).
        ring: &'static str,
    },
    /// A perturbation rate exceeded 1.0 (one million parts per million).
    RateOutOfRange {
        /// Which rate field was out of range.
        rate: &'static str,
        /// The offending parts-per-million value.
        ppm: u32,
    },
}

impl fmt::Display for HwConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwConfigError::ZeroLbrEntries => {
                write!(f, "lbr_entries must be positive (zero-entry ring)")
            }
            HwConfigError::ZeroLcrEntries => {
                write!(f, "lcr_entries must be positive (zero-entry ring)")
            }
            HwConfigError::ZeroTruncation { ring } => write!(
                f,
                "perturbation truncates the {ring} ring to zero records; \
                 use a drop or loss rate of 1.0 for a total blackout"
            ),
            HwConfigError::RateOutOfRange { rate, ppm } => write!(
                f,
                "perturbation rate {rate} = {ppm} ppm exceeds 1000000 (probability 1.0)"
            ),
        }
    }
}

impl std::error::Error for HwConfigError {}

/// Static configuration of the monitoring unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwConfig {
    /// Number of cores (and LBRs).
    pub num_cores: u32,
    /// LBR entries per core.
    pub lbr_entries: usize,
    /// LCR entries per thread.
    pub lcr_entries: usize,
    /// Initial LCR event selection.
    pub lcr_config: LcrConfig,
    /// Cache geometry.
    pub cache: CacheConfig,
    /// Attach a whole-execution BTS buffer.
    pub enable_bts: bool,
    /// Attach a PBI-style coherence sampler with this period.
    pub sampler_period: Option<u64>,
    /// Fault injection applied to snapshots as the driver reads them
    /// (default: none — the full signal).
    pub perturb: PerturbConfig,
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig {
            num_cores: 4,
            lbr_entries: NEHALEM_ENTRIES,
            lcr_entries: DEFAULT_ENTRIES,
            lcr_config: LcrConfig::default(),
            cache: CacheConfig::PAPER,
            enable_bts: false,
            sampler_period: None,
            perturb: PerturbConfig::NONE,
        }
    }
}

impl HwConfig {
    /// Checks the configuration for contradictions — zero-capacity rings
    /// and malformed perturbation settings — without building anything.
    /// [`HardwareCtx::new`] asserts on the same conditions; sessions call
    /// this first so a bad configuration surfaces as a typed error instead
    /// of a panic inside a worker.
    pub fn validate(&self) -> Result<(), HwConfigError> {
        if self.lbr_entries == 0 {
            return Err(HwConfigError::ZeroLbrEntries);
        }
        if self.lcr_entries == 0 {
            return Err(HwConfigError::ZeroLcrEntries);
        }
        self.perturb.validate()
    }
}

/// The full simulated performance-monitoring unit.
#[derive(Debug, Clone)]
pub struct HardwareCtx {
    config: HwConfig,
    lbrs: Vec<Lbr>,
    cache: CacheSystem,
    lcr: Lcr,
    counters: PerfCounters,
    bts: Option<Bts>,
    sampler: Option<CoherenceSampler>,
    perturb: Option<PerturbLayer>,
}

impl HardwareCtx {
    /// Creates a monitoring unit from a configuration.
    pub fn new(config: HwConfig) -> Self {
        let mut lcr = Lcr::new(config.lcr_entries);
        lcr.configure(config.lcr_config);
        HardwareCtx {
            config,
            lbrs: (0..config.num_cores.max(1))
                .map(|_| Lbr::new(config.lbr_entries))
                .collect(),
            cache: CacheSystem::new(config.num_cores, config.cache),
            lcr,
            counters: PerfCounters::new(),
            bts: if config.enable_bts {
                let mut b = Bts::new();
                b.enable();
                Some(b)
            } else {
                None
            },
            sampler: config.sampler_period.map(|p| {
                let mut s = CoherenceSampler::new(p);
                s.enable();
                s
            }),
            perturb: PerturbLayer::new(&config.perturb, 0),
        }
    }

    /// Restores the unit to the exact state a fresh
    /// [`HardwareCtx::new`] with the same configuration would produce,
    /// while keeping every internal allocation (rings, cache sets,
    /// sample buffers). Building a paper-default context allocates one
    /// `Vec` per cache set per core — thousands of allocations that used
    /// to be paid per run; a runner that resets instead pays none.
    ///
    /// Callers that inject perturbations must still call
    /// [`HardwareCtx::seed_perturbations`] per run, exactly as they must
    /// after `new`.
    pub fn reset(&mut self) {
        for lbr in &mut self.lbrs {
            lbr.reset();
        }
        self.cache.reset();
        self.lcr.reset();
        self.lcr.configure(self.config.lcr_config);
        self.counters.reset();
        if let Some(bts) = &mut self.bts {
            bts.clean();
            bts.enable();
        }
        if let Some(s) = &mut self.sampler {
            s.reset();
            s.enable();
        }
        if let Some(layer) = &mut self.perturb {
            layer.reseed(0);
        }
    }

    /// Re-seeds the fault-injection stream for a new run. The runner calls
    /// this with the workload's scheduler seed before execution starts, so
    /// injected faults are a pure function of (config, run) — independent
    /// of worker thread, collection order, or wall clock. A no-op when the
    /// configuration injects nothing.
    pub fn seed_perturbations(&mut self, run_seed: u64) {
        if let Some(layer) = &mut self.perturb {
            layer.reseed(run_seed);
        }
    }

    /// A unit with paper-default settings (4 cores, 16-entry LBR/LCR).
    pub fn with_defaults() -> Self {
        HardwareCtx::new(HwConfig::default())
    }

    /// Direct access to one core's LBR (tests and harnesses).
    pub fn lbr(&self, core: CoreId) -> &Lbr {
        &self.lbrs[core.index()]
    }

    /// Direct access to the LCR facility.
    pub fn lcr(&self) -> &Lcr {
        &self.lcr
    }

    /// Direct access to the cache system.
    pub fn cache(&self) -> &CacheSystem {
        &self.cache
    }

    /// The coherence-event counters.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// The BTS trace, when attached.
    pub fn bts(&self) -> Option<&Bts> {
        self.bts.as_ref()
    }

    /// The PBI sampler, when attached.
    pub fn sampler(&self) -> Option<&CoherenceSampler> {
        self.sampler.as_ref()
    }

    /// Mutable access to the PBI sampler, when attached.
    pub fn sampler_mut(&mut self) -> Option<&mut CoherenceSampler> {
        self.sampler.as_mut()
    }

    /// Drains the PBI sampler's latched records, running them through the
    /// perturbation pipeline (sampler-period thinning) when one is active.
    pub fn take_coherence_samples(&mut self) -> Vec<stm_machine::events::CoherenceRecord> {
        let samples = self
            .sampler
            .as_mut()
            .map(|s| s.take_samples())
            .unwrap_or_default();
        match &mut self.perturb {
            Some(layer) => layer.samples(samples),
            None => samples,
        }
    }
}

impl Default for HardwareCtx {
    fn default() -> Self {
        HardwareCtx::with_defaults()
    }
}

impl Hardware for HardwareCtx {
    fn on_branch(&mut self, core: CoreId, ev: BranchEvent) {
        self.lbrs[core.index()].record(ev);
        if let Some(bts) = &mut self.bts {
            bts.record(ev);
        }
    }

    fn on_access(&mut self, core: CoreId, thread: ThreadId, ev: AccessEvent) {
        let observed = self.cache.access(core, ev.addr, ev.kind);
        self.counters.observe(ev.kind, observed);
        self.lcr.record(thread, ev.pc, observed, ev.kind, ev.ring);
        if let Some(s) = &mut self.sampler {
            if ev.ring == Ring::User {
                s.observe(ev.pc, observed, ev.kind);
            }
        }
    }

    /// The batched ingest path: one virtual call per interpreter flush
    /// instead of one per retired event, with the per-event telemetry
    /// counters accumulated locally and published in one add per batch.
    /// State changes and counter totals are exactly those of replaying
    /// the batch through `on_branch`/`on_access` in order.
    fn on_batch(&mut self, events: &[HwEvent]) {
        let mut lbr_pushes = 0u64;
        let mut bts_pushes = 0u64;
        let mut lcr_pushes = 0u64;
        let mut accesses = 0u64;
        for ev in events {
            match *ev {
                HwEvent::Branch { core, ev } => {
                    if self.lbrs[core.index()].push(ev) {
                        lbr_pushes += 1;
                    }
                }
                HwEvent::Access { core, thread, ev } => {
                    let observed = self.cache.access(core, ev.addr, ev.kind);
                    self.counters.observe_quiet(ev.kind, observed);
                    accesses += 1;
                    if self.lcr.push(thread, ev.pc, observed, ev.kind, ev.ring) {
                        lcr_pushes += 1;
                    }
                    if let Some(s) = &mut self.sampler {
                        if ev.ring == Ring::User {
                            s.observe(ev.pc, observed, ev.kind);
                        }
                    }
                }
            }
        }
        // BTS enable/filter state only changes through `ctl`, and the
        // interpreter flushes before every ctl, so one bulk append over
        // the batch's branch events is equivalent to the per-event
        // interleaving above.
        if let Some(bts) = &mut self.bts {
            bts_pushes = bts.push_batch(events.iter().filter_map(|e| match *e {
                HwEvent::Branch { ev, .. } => Some(ev),
                HwEvent::Access { .. } => None,
            }));
        }
        // Guarded adds so a counter a batch never touched stays
        // unregistered, exactly as on the per-event path.
        if lbr_pushes > 0 {
            stm_telemetry::counter!("hw.lbr.pushes").add(lbr_pushes);
        }
        if bts_pushes > 0 {
            stm_telemetry::counter!("hw.bts.pushes").add(bts_pushes);
        }
        if lcr_pushes > 0 {
            stm_telemetry::counter!("hw.lcr.pushes").add(lcr_pushes);
        }
        if accesses > 0 {
            stm_telemetry::counter!("hw.counters.events").add(accesses);
        }
    }

    fn ctl(&mut self, core: CoreId, thread: ThreadId, op: HwCtlOp) -> CtlResponse {
        match op {
            // LBR control applies to every core (the kernel module writes
            // the MSRs on all cores); profiling reads only the calling
            // core's stack, matching the constraint of §4.2.1.
            HwCtlOp::CleanLbr => {
                for lbr in &mut self.lbrs {
                    lbr.clean();
                }
                CtlResponse::Done
            }
            HwCtlOp::ConfigLbr(mask) => {
                for lbr in &mut self.lbrs {
                    lbr.config(mask);
                }
                CtlResponse::Done
            }
            HwCtlOp::EnableLbr => {
                for lbr in &mut self.lbrs {
                    lbr.enable();
                }
                CtlResponse::Done
            }
            HwCtlOp::DisableLbr => {
                for lbr in &mut self.lbrs {
                    lbr.disable();
                }
                CtlResponse::Done
            }
            HwCtlOp::ProfileLbr => {
                // The ring copy is deferred: a read the perturbation layer
                // loses at the head of its pipeline never materializes a
                // snapshot. Telemetry still counts the read attempt,
                // exactly as the eager path did.
                let lbr = &self.lbrs[core.index()];
                stm_telemetry::counter!("hw.lbr.snapshots").incr();
                stm_telemetry::histogram!("hw.lbr.snapshot_records").record(lbr.len() as u64);
                stm_telemetry::instant("hw.lbr.snapshot", "hardware");
                match &mut self.perturb {
                    None => CtlResponse::Lbr(lbr.read()),
                    Some(layer) => match layer.lbr_snapshot_lazy(|| lbr.read()) {
                        Some(records) => CtlResponse::Lbr(records),
                        None => CtlResponse::Lost,
                    },
                }
            }
            HwCtlOp::CleanLcr => {
                self.lcr.clean(thread);
                CtlResponse::Done
            }
            HwCtlOp::ConfigLcr(cfg) => {
                self.lcr.configure(cfg);
                CtlResponse::Done
            }
            HwCtlOp::EnableLcr => {
                self.lcr.enable(thread);
                CtlResponse::Done
            }
            HwCtlOp::DisableLcr => {
                self.lcr.disable(thread);
                CtlResponse::Done
            }
            HwCtlOp::ProfileLcr => {
                let lcr = &self.lcr;
                stm_telemetry::counter!("hw.lcr.snapshots").incr();
                stm_telemetry::histogram!("hw.lcr.snapshot_records").record(lcr.len(thread) as u64);
                stm_telemetry::instant("hw.lcr.snapshot", "hardware");
                match &mut self.perturb {
                    None => CtlResponse::Lcr(lcr.read(thread)),
                    Some(layer) => match layer.lcr_snapshot_lazy(|| lcr.read(thread)) {
                        Some(records) => CtlResponse::Lcr(records),
                        None => CtlResponse::Lost,
                    },
                }
            }
        }
    }
}

// Send/Sync audit: each collection-engine worker owns a fresh
// `HardwareCtx` per run, so the simulated hardware must be safe to build
// and move across threads. Compile-time check that no thread-bound state
// sneaks into the rings or cache model.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<HardwareCtx>();
    assert_send_sync::<HwConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::events::{AccessKind, BranchKind, CoherenceState};

    const C0: CoreId = CoreId(0);
    const C1: CoreId = CoreId(1);
    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn branch(from: u64) -> BranchEvent {
        BranchEvent {
            from,
            to: from + 4,
            kind: BranchKind::CondJump,
            ring: Ring::User,
        }
    }

    fn load(pc: u64, addr: u64) -> AccessEvent {
        AccessEvent {
            pc,
            addr,
            kind: AccessKind::Load,
            ring: Ring::User,
        }
    }

    #[test]
    fn lbrs_are_per_core() {
        let mut hw = HardwareCtx::with_defaults();
        hw.ctl(C0, T0, HwCtlOp::EnableLbr);
        hw.on_branch(C0, branch(0x100));
        hw.on_branch(C1, branch(0x200));
        match hw.ctl(C0, T0, HwCtlOp::ProfileLbr) {
            CtlResponse::Lbr(snap) => {
                assert_eq!(snap.len(), 1);
                assert_eq!(snap[0].from, 0x100);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn lcr_records_cache_observed_states() {
        let mut hw = HardwareCtx::with_defaults();
        hw.ctl(C0, T0, HwCtlOp::EnableLcr);
        hw.on_access(C0, T0, load(0x400100, 0x1000)); // cold: Invalid
        hw.on_access(C0, T0, load(0x400104, 0x1000)); // hit: Exclusive
        match hw.ctl(C0, T0, HwCtlOp::ProfileLcr) {
            CtlResponse::Lcr(snap) => {
                // Most recent first: exclusive hit, then the cold invalid,
                // then the two enable-pollution entries.
                assert_eq!(snap.len(), 4);
                assert_eq!(snap[0].pc, 0x400104);
                assert_eq!(snap[0].state, CoherenceState::Exclusive);
                assert_eq!(snap[1].pc, 0x400100);
                assert_eq!(snap[1].state, CoherenceState::Invalid);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn counters_see_all_coherence_events() {
        let mut hw = HardwareCtx::with_defaults();
        hw.on_access(C0, T0, load(1, 0x1000));
        hw.on_access(C0, T0, load(2, 0x1000));
        assert_eq!(
            hw.counters()
                .count(AccessKind::Load, CoherenceState::Invalid),
            1
        );
        assert_eq!(
            hw.counters()
                .count(AccessKind::Load, CoherenceState::Exclusive),
            1
        );
    }

    #[test]
    fn cross_thread_invalidation_reaches_lcr() {
        let mut hw = HardwareCtx::with_defaults();
        hw.ctl(C0, T0, HwCtlOp::EnableLcr);
        // T1 (core 1) writes the line, invalidating T0's copy.
        hw.on_access(C0, T0, load(0x10, 0x2000));
        hw.on_access(
            C1,
            T1,
            AccessEvent {
                pc: 0x20,
                addr: 0x2000,
                kind: AccessKind::Store,
                ring: Ring::User,
            },
        );
        hw.on_access(C0, T0, load(0x30, 0x2000)); // observes Invalid
        let snap = match hw.ctl(C0, T0, HwCtlOp::ProfileLcr) {
            CtlResponse::Lcr(s) => s,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(snap[0].pc, 0x30);
        assert_eq!(snap[0].state, CoherenceState::Invalid);
    }

    #[test]
    fn bts_captures_whole_history() {
        let mut hw = HardwareCtx::new(HwConfig {
            enable_bts: true,
            ..HwConfig::default()
        });
        hw.ctl(C0, T0, HwCtlOp::EnableLbr);
        for i in 0..100 {
            hw.on_branch(C0, branch(i));
        }
        assert_eq!(hw.bts().unwrap().len(), 100);
        // LBR kept only the last 16.
        assert_eq!(hw.lbr(C0).len(), 16);
    }

    #[test]
    fn validate_rejects_zero_capacity_rings() {
        assert!(HwConfig::default().validate().is_ok());
        let no_lbr = HwConfig {
            lbr_entries: 0,
            ..HwConfig::default()
        };
        assert_eq!(no_lbr.validate(), Err(HwConfigError::ZeroLbrEntries));
        let no_lcr = HwConfig {
            lcr_entries: 0,
            ..HwConfig::default()
        };
        assert_eq!(no_lcr.validate(), Err(HwConfigError::ZeroLcrEntries));
    }

    #[test]
    fn perturbed_profile_truncates_at_read_time() {
        let mut hw = HardwareCtx::new(HwConfig {
            perturb: PerturbConfig::NONE.truncate_lbr(2),
            ..HwConfig::default()
        });
        hw.seed_perturbations(1);
        hw.ctl(C0, T0, HwCtlOp::EnableLbr);
        for i in 0..6 {
            hw.on_branch(C0, branch(0x100 + i * 0x10));
        }
        // The ring itself still holds all six records (the hardware is
        // untouched); only the read is degraded.
        assert_eq!(hw.lbr(C0).len(), 6);
        match hw.ctl(C0, T0, HwCtlOp::ProfileLbr) {
            CtlResponse::Lbr(snap) => {
                assert_eq!(snap.len(), 2);
                assert_eq!(snap[0].from, 0x150);
                assert_eq!(snap[1].from, 0x140);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn total_snapshot_loss_reports_lost() {
        let mut hw = HardwareCtx::new(HwConfig {
            perturb: PerturbConfig::NONE.loss_rate(1.0),
            ..HwConfig::default()
        });
        hw.seed_perturbations(1);
        hw.ctl(C0, T0, HwCtlOp::EnableLbr);
        hw.on_branch(C0, branch(0x100));
        assert_eq!(hw.ctl(C0, T0, HwCtlOp::ProfileLbr), CtlResponse::Lost);
        hw.ctl(C0, T0, HwCtlOp::EnableLcr);
        hw.on_access(C0, T0, load(0x200, 0x1000));
        assert_eq!(hw.ctl(C0, T0, HwCtlOp::ProfileLcr), CtlResponse::Lost);
    }

    /// A mixed event stream exercising rings, cache, counters, sampler
    /// and BTS across cores and threads.
    fn mixed_events() -> Vec<HwEvent> {
        let mut evs = Vec::new();
        for i in 0..200u64 {
            let core = CoreId((i % 3) as u32);
            let thread = ThreadId((i % 2) as u32);
            if i % 4 == 0 {
                evs.push(HwEvent::Branch {
                    core,
                    ev: branch(0x1000 + i * 0x10),
                });
            } else {
                evs.push(HwEvent::Access {
                    core,
                    thread,
                    ev: AccessEvent {
                        pc: 0x400000 + i * 4,
                        addr: 0x1000 + (i % 7) * 64,
                        kind: if i % 5 == 0 {
                            AccessKind::Store
                        } else {
                            AccessKind::Load
                        },
                        ring: Ring::User,
                    },
                });
            }
        }
        evs
    }

    fn batch_config() -> HwConfig {
        HwConfig {
            enable_bts: true,
            sampler_period: Some(3),
            ..HwConfig::default()
        }
    }

    #[test]
    fn batch_ingest_matches_per_event_ingest() {
        let events = mixed_events();
        let mut per_event = HardwareCtx::new(batch_config());
        let mut batched = HardwareCtx::new(batch_config());
        for hw in [&mut per_event, &mut batched] {
            hw.ctl(C0, T0, HwCtlOp::EnableLbr);
            hw.ctl(C0, T0, HwCtlOp::EnableLcr);
        }
        for ev in &events {
            match *ev {
                HwEvent::Branch { core, ev } => per_event.on_branch(core, ev),
                HwEvent::Access { core, thread, ev } => per_event.on_access(core, thread, ev),
            }
        }
        // Deliver the same stream in uneven batch sizes.
        for chunk in events.chunks(17) {
            batched.on_batch(chunk);
        }
        for core in 0..3 {
            assert_eq!(
                per_event.lbr(CoreId(core)).snapshot(),
                batched.lbr(CoreId(core)).snapshot(),
                "core {core} LBR"
            );
        }
        for t in [T0, T1] {
            assert_eq!(per_event.lcr().read(t), batched.lcr().read(t));
        }
        for kind in [AccessKind::Load, AccessKind::Store] {
            for state in [
                CoherenceState::Modified,
                CoherenceState::Exclusive,
                CoherenceState::Shared,
                CoherenceState::Invalid,
            ] {
                assert_eq!(
                    per_event.counters().count(kind, state),
                    batched.counters().count(kind, state)
                );
            }
        }
        assert_eq!(
            per_event.bts().unwrap().trace(),
            batched.bts().unwrap().trace()
        );
        assert_eq!(
            per_event.sampler().unwrap().samples(),
            batched.sampler().unwrap().samples()
        );
        assert_eq!(per_event.cache().evictions(), batched.cache().evictions());
        assert_eq!(
            per_event.cache().invalidations(),
            batched.cache().invalidations()
        );
    }

    #[test]
    fn reset_restores_the_fresh_state() {
        let config = HwConfig {
            perturb: PerturbConfig::NONE.drop_rate(0.3),
            ..batch_config()
        };
        let mut reused = HardwareCtx::new(config);
        // Dirty everything: enable, record, reconfigure, profile.
        reused.seed_perturbations(42);
        reused.ctl(C0, T0, HwCtlOp::EnableLbr);
        reused.ctl(C0, T0, HwCtlOp::EnableLcr);
        reused.ctl(C0, T0, HwCtlOp::ConfigLbr(0));
        reused.ctl(C0, T0, HwCtlOp::ConfigLcr(LcrConfig::SPACE_SAVING));
        reused.on_batch(&mixed_events());
        let _ = reused.ctl(C0, T0, HwCtlOp::ProfileLbr);
        reused.reset();

        // After reset, an identical run must be indistinguishable from
        // one on a brand-new context.
        let mut fresh = HardwareCtx::new(config);
        for hw in [&mut reused, &mut fresh] {
            hw.seed_perturbations(7);
            hw.ctl(C0, T0, HwCtlOp::EnableLbr);
            hw.ctl(C1, T1, HwCtlOp::EnableLcr);
            hw.on_batch(&mixed_events());
        }
        assert_eq!(
            reused.ctl(C0, T0, HwCtlOp::ProfileLbr),
            fresh.ctl(C0, T0, HwCtlOp::ProfileLbr)
        );
        assert_eq!(
            reused.ctl(C1, T1, HwCtlOp::ProfileLcr),
            fresh.ctl(C1, T1, HwCtlOp::ProfileLcr)
        );
        assert_eq!(reused.counters().total(), fresh.counters().total());
        assert_eq!(reused.cache().evictions(), fresh.cache().evictions());
        assert_eq!(reused.bts().unwrap().trace(), fresh.bts().unwrap().trace());
        assert_eq!(
            reused.sampler().unwrap().samples(),
            fresh.sampler().unwrap().samples()
        );
    }

    #[test]
    fn sampler_latches_periodically() {
        let mut hw = HardwareCtx::new(HwConfig {
            sampler_period: Some(2),
            ..HwConfig::default()
        });
        for i in 0..6 {
            hw.on_access(C0, T0, load(i, 0x1000 + i * 64));
        }
        assert_eq!(hw.sampler().unwrap().samples().len(), 3);
        assert_eq!(hw.take_coherence_samples().len(), 3);
        assert_eq!(hw.take_coherence_samples().len(), 0);
    }
}
