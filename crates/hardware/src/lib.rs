//! # stm-hardware — the simulated performance-monitoring unit
//!
//! Implements the hardware short-term-memory facilities of the ASPLOS'14
//! paper behind the [`Hardware`](stm_machine::events::Hardware) trait of
//! `stm-machine`:
//!
//! * [`lbr`] — the existing **Last Branch Record** facility: per-core rings
//!   of the last 16 taken branches with `LBR_SELECT` filtering (Table 1);
//! * [`bts`] — the **Branch Trace Store**, the whole-execution alternative
//!   the paper rejects for its 20–100% overhead;
//! * [`cache`] — the coherent multi-core **MESI L1** system (2-way, 64 B
//!   lines, 64 KB/core, as in the paper's simulator);
//! * [`lcr`] — the proposed **Last Cache-coherence Record** extension:
//!   per-thread rings of `(pc, observed MESI state)` pairs, with the
//!   paper's driver-pollution model;
//! * [`counters`] — coherence-event **performance counters** and the
//!   interrupt-sampling mechanism the PBI baseline relies on;
//! * [`perturb`] — the **fault-injection layer** degrading snapshots at
//!   read time (ring truncation, entry drop, coherence-state flips,
//!   sampler thinning, whole-snapshot loss) for sensitivity studies;
//! * [`context`] — [`HardwareCtx`], the assembled unit the interpreter
//!   drives.
//!
//! ## Example
//!
//! ```
//! use stm_hardware::HardwareCtx;
//! use stm_machine::events::{Hardware, HwCtlOp, CtlResponse, BranchEvent, BranchKind, Ring};
//! use stm_machine::ids::{CoreId, ThreadId};
//!
//! let mut hw = HardwareCtx::with_defaults();
//! hw.ctl(CoreId(0), ThreadId::MAIN, HwCtlOp::EnableLbr);
//! hw.on_branch(CoreId(0), BranchEvent {
//!     from: 0x400000, to: 0x400010, kind: BranchKind::CondJump, ring: Ring::User,
//! });
//! let CtlResponse::Lbr(snapshot) = hw.ctl(CoreId(0), ThreadId::MAIN, HwCtlOp::ProfileLbr)
//! else { unreachable!() };
//! assert_eq!(snapshot.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bts;
pub mod cache;
pub mod context;
pub mod counters;
pub mod lbr;
pub mod lcr;
pub mod perturb;

pub use bts::Bts;
pub use cache::{CacheConfig, CacheSystem, HeldState};
pub use context::{HardwareCtx, HwConfig, HwConfigError};
pub use counters::{CoherenceSampler, PerfCounters};
pub use lbr::{Lbr, NEHALEM_ENTRIES};
pub use lcr::{Lcr, DEFAULT_ENTRIES};
pub use perturb::{PerturbConfig, PerturbLayer, Perturbation};
