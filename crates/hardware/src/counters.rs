//! Hardware performance counters for L1-D coherence events (§2.2) and the
//! interrupt-driven sampling on top of them that the PBI baseline uses.
//!
//! A counter register counts accesses matching one `(event code, unit
//! mask)` pair — e.g. "loads observing Invalid". [`CoherenceSampler`]
//! models reading the counters through periodic interrupts: every `period`
//! matching events it latches the `(pc, state, kind)` of the triggering
//! access, which is exactly the per-instruction coherence predicate stream
//! PBI feeds its statistical model.

use stm_machine::events::{AccessKind, CoherenceRecord, CoherenceState};

/// Register index of an access kind.
fn kind_idx(kind: AccessKind) -> usize {
    match kind {
        AccessKind::Load => 0,
        AccessKind::Store => 1,
    }
}

/// Register index of a coherence state.
fn state_idx(state: CoherenceState) -> usize {
    match state {
        CoherenceState::Modified => 0,
        CoherenceState::Exclusive => 1,
        CoherenceState::Shared => 2,
        CoherenceState::Invalid => 3,
    }
}

/// Per-(access kind, state) event counts — one logical counter register
/// per pair, stored as a fixed 2×4 array so counting a retired access is
/// one indexed add.
#[derive(Debug, Clone, Default)]
pub struct PerfCounters {
    counts: [[u64; 4]; 2],
}

impl PerfCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        PerfCounters::default()
    }

    /// Counts one retired access.
    pub fn observe(&mut self, kind: AccessKind, state: CoherenceState) {
        self.observe_quiet(kind, state);
        stm_telemetry::counter!("hw.counters.events").incr();
    }

    /// The telemetry-free count underneath [`PerfCounters::observe`] —
    /// the batch ingest path reports event volume in one counter add.
    pub fn observe_quiet(&mut self, kind: AccessKind, state: CoherenceState) {
        self.counts[kind_idx(kind)][state_idx(state)] += 1;
    }

    /// Reads one counter.
    pub fn count(&self, kind: AccessKind, state: CoherenceState) -> u64 {
        self.counts[kind_idx(kind)][state_idx(state)]
    }

    /// Total events counted.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.counts = [[0; 4]; 2];
    }

    /// Flushes this run's totals into the telemetry collector: one
    /// histogram sample of total coherence-event volume, so per-run
    /// hardware pressure shows up next to the profiler's per-run guest
    /// costs. Free when collection is off; call once at end of run.
    pub fn flush_run_telemetry(&self) {
        if !stm_telemetry::enabled() {
            return;
        }
        stm_telemetry::histogram!("hw.counters.events_per_run").record(self.total());
    }
}

/// Interrupt-driven sampling of coherence events (the PBI mechanism).
#[derive(Debug, Clone)]
pub struct CoherenceSampler {
    period: u64,
    countdown: u64,
    samples: Vec<CoherenceRecord>,
    enabled: bool,
}

impl CoherenceSampler {
    /// Creates a sampler firing every `period` matching events.
    pub fn new(period: u64) -> Self {
        let period = period.max(1);
        CoherenceSampler {
            period,
            countdown: period,
            samples: Vec::new(),
            enabled: false,
        }
    }

    /// Starts sampling.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Stops sampling.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Overrides the current countdown (phase), so repeated runs can latch
    /// different events — the wall-clock skew of a real deployment.
    pub fn set_countdown(&mut self, n: u64) {
        self.countdown = n.clamp(1, self.period.max(1));
    }

    /// Offers a matching event; latches it when the countdown fires.
    pub fn observe(&mut self, pc: u64, state: CoherenceState, access: AccessKind) {
        if !self.enabled {
            return;
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            self.samples.push(CoherenceRecord { pc, state, access });
            stm_telemetry::counter!("hw.sampler.samples").incr();
        }
    }

    /// Restores the exactly-fresh latch state (no samples, countdown at a
    /// full period) while keeping the sample buffer's allocation. Leaves
    /// the enable state alone — that is the owner's wiring to restore.
    pub fn reset(&mut self) {
        self.samples.clear();
        self.countdown = self.period;
    }

    /// The latched samples, in order.
    pub fn samples(&self) -> &[CoherenceRecord] {
        &self.samples
    }

    /// Drains the latched samples.
    pub fn take_samples(&mut self) -> Vec<CoherenceRecord> {
        std::mem::take(&mut self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count_per_pair() {
        let mut c = PerfCounters::new();
        c.observe(AccessKind::Load, CoherenceState::Invalid);
        c.observe(AccessKind::Load, CoherenceState::Invalid);
        c.observe(AccessKind::Store, CoherenceState::Modified);
        assert_eq!(c.count(AccessKind::Load, CoherenceState::Invalid), 2);
        assert_eq!(c.count(AccessKind::Store, CoherenceState::Modified), 1);
        assert_eq!(c.count(AccessKind::Store, CoherenceState::Invalid), 0);
        assert_eq!(c.total(), 3);
        c.reset();
        assert_eq!(c.total(), 0);
    }

    #[test]
    fn sampler_latches_every_period() {
        let mut s = CoherenceSampler::new(3);
        s.enable();
        for pc in 0..10 {
            s.observe(pc, CoherenceState::Invalid, AccessKind::Load);
        }
        let pcs: Vec<u64> = s.samples().iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![2, 5, 8]);
    }

    #[test]
    fn disabled_sampler_is_silent() {
        let mut s = CoherenceSampler::new(1);
        s.observe(1, CoherenceState::Invalid, AccessKind::Load);
        assert!(s.samples().is_empty());
    }

    #[test]
    fn take_samples_drains() {
        let mut s = CoherenceSampler::new(1);
        s.enable();
        s.observe(7, CoherenceState::Shared, AccessKind::Load);
        assert_eq!(s.take_samples().len(), 1);
        assert!(s.samples().is_empty());
    }
}
