//! The Last Cache-coherence Record (LCR) — the paper's proposed hardware
//! extension (§4.2).
//!
//! Per-thread circular buffers of `(program counter, observed coherence
//! state)` pairs for retired L1-D accesses matching the configured event
//! selection ([`LcrConfig`]). Mirrors the paper's PIN-based simulator
//! (§4.3) including its pollution model:
//!
//! * the `ioctl` that **enables** LCR introduces two user-level exclusive
//!   reads;
//! * the `ioctl` that **disables** LCR introduces two user-level exclusive
//!   reads and one user-level shared read (observed while still enabled,
//!   before the disable takes effect).
//!
//! Memory addresses are never stored — only program counters and states.

use std::collections::VecDeque;
use stm_machine::events::{AccessKind, CoherenceRecord, CoherenceState, LcrConfig, Ring};
use stm_machine::ids::ThreadId;

/// Default number of LCR entries (K = 16, resembling Nehalem's LBR, §4.2.1).
pub const DEFAULT_ENTRIES: usize = 16;

/// Synthetic program counter attributed to the driver's pollution accesses.
pub const POLLUTION_PC: u64 = 0xDEAD_0000;

/// The per-thread LCR facility.
///
/// Thread ids are dense per run (spawn order), so the per-thread rings
/// live in a `Vec` indexed by thread — the record hot path is one bounds
/// check, not a hash.
#[derive(Debug, Clone)]
pub struct Lcr {
    capacity: usize,
    config: LcrConfig,
    enabled: bool,
    rings: Vec<VecDeque<CoherenceRecord>>,
}

impl Lcr {
    /// Creates a disabled LCR with the given per-thread capacity.
    ///
    /// # Panics
    ///
    /// Panics on a zero `capacity`: a coherence ring with no entries is a
    /// configuration bug, not a degenerate ring. Validate configurations
    /// up front with [`HwConfig::validate`](crate::HwConfig::validate),
    /// which reports the error instead of panicking.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LCR capacity must be positive");
        Lcr {
            capacity,
            config: LcrConfig::default(),
            enabled: false,
            rings: Vec::new(),
        }
    }

    /// Per-thread capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The active event selection.
    pub fn config(&self) -> LcrConfig {
        self.config
    }

    /// Programs the event selection.
    pub fn configure(&mut self, config: LcrConfig) {
        self.config = config;
    }

    /// Clears the calling thread's ring.
    pub fn clean(&mut self, thread: ThreadId) {
        if let Some(buf) = self.rings.get_mut(thread.index()) {
            buf.clear();
        }
    }

    /// Restores the exactly-fresh state (disabled, all rings empty) while
    /// keeping every ring's allocation. The event selection is the
    /// caller's to restore — it is configuration, not recording state.
    pub fn reset(&mut self) {
        self.enabled = false;
        for buf in &mut self.rings {
            buf.clear();
        }
    }

    /// Enables recording, then applies the enable-path pollution (two
    /// user-level exclusive reads by the calling thread).
    pub fn enable(&mut self, thread: ThreadId) {
        self.enabled = true;
        for i in 0..2 {
            self.record(
                thread,
                POLLUTION_PC + i,
                CoherenceState::Exclusive,
                AccessKind::Load,
                Ring::User,
            );
        }
    }

    /// Applies the disable-path pollution (two exclusive reads and one
    /// shared read, still recorded), then disables recording.
    pub fn disable(&mut self, thread: ThreadId) {
        for i in 0..2 {
            self.record(
                thread,
                POLLUTION_PC + 0x10 + i,
                CoherenceState::Exclusive,
                AccessKind::Load,
                Ring::User,
            );
        }
        self.record(
            thread,
            POLLUTION_PC + 0x20,
            CoherenceState::Shared,
            AccessKind::Load,
            Ring::User,
        );
        self.enabled = false;
    }

    /// Offers a retired access to the calling thread's ring; records it
    /// when enabled and admitted by the configuration.
    pub fn record(
        &mut self,
        thread: ThreadId,
        pc: u64,
        state: CoherenceState,
        access: AccessKind,
        ring: Ring,
    ) {
        if self.push(thread, pc, state, access, ring) {
            stm_telemetry::counter!("hw.lcr.pushes").incr();
        }
    }

    /// The telemetry-free push underneath [`Lcr::record`] — the batch
    /// ingest path counts admitted pushes itself. Returns whether the
    /// access was recorded.
    pub fn push(
        &mut self,
        thread: ThreadId,
        pc: u64,
        state: CoherenceState,
        access: AccessKind,
        ring: Ring,
    ) -> bool {
        if !self.enabled || !self.config.admits(access, state, ring) {
            return false;
        }
        let idx = thread.index();
        if idx >= self.rings.len() {
            self.rings.resize_with(idx + 1, VecDeque::new);
        }
        let buf = &mut self.rings[idx];
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(CoherenceRecord { pc, state, access });
        true
    }

    /// Reads the calling thread's ring, most recent access first.
    pub fn snapshot(&self, thread: ThreadId) -> Vec<CoherenceRecord> {
        stm_telemetry::counter!("hw.lcr.snapshots").incr();
        stm_telemetry::histogram!("hw.lcr.snapshot_records").record(self.len(thread) as u64);
        stm_telemetry::instant("hw.lcr.snapshot", "hardware");
        self.read(thread)
    }

    /// The telemetry-free ring read underneath [`Lcr::snapshot`]. The
    /// control path uses it to defer the copy until the perturbation
    /// layer has decided the read is not lost.
    pub fn read(&self, thread: ThreadId) -> Vec<CoherenceRecord> {
        self.rings
            .get(thread.index())
            .map(|b| b.iter().rev().copied().collect())
            .unwrap_or_default()
    }

    /// Number of records currently held for `thread`.
    pub fn len(&self, thread: ThreadId) -> usize {
        self.rings.get(thread.index()).map_or(0, VecDeque::len)
    }
}

impl Default for Lcr {
    fn default() -> Self {
        Lcr::new(DEFAULT_ENTRIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: ThreadId = ThreadId(0);
    const T1: ThreadId = ThreadId(1);

    fn enabled_lcr(config: LcrConfig) -> Lcr {
        let mut lcr = Lcr::new(16);
        lcr.configure(config);
        lcr.enabled = true; // bypass enable() to skip pollution in tests
        lcr
    }

    #[test]
    fn disabled_lcr_records_nothing() {
        let mut lcr = Lcr::new(4);
        lcr.record(
            T0,
            0x100,
            CoherenceState::Invalid,
            AccessKind::Load,
            Ring::User,
        );
        assert!(lcr.snapshot(T0).is_empty());
    }

    #[test]
    fn rings_are_per_thread() {
        let mut lcr = enabled_lcr(LcrConfig::SPACE_CONSUMING);
        lcr.record(T0, 1, CoherenceState::Invalid, AccessKind::Load, Ring::User);
        lcr.record(T1, 2, CoherenceState::Invalid, AccessKind::Load, Ring::User);
        assert_eq!(lcr.snapshot(T0).len(), 1);
        assert_eq!(lcr.snapshot(T0)[0].pc, 1);
        assert_eq!(lcr.snapshot(T1)[0].pc, 2);
    }

    #[test]
    fn configuration_filters_states() {
        let mut lcr = enabled_lcr(LcrConfig::SPACE_CONSUMING);
        lcr.record(T0, 1, CoherenceState::Shared, AccessKind::Load, Ring::User);
        assert!(lcr.snapshot(T0).is_empty());
        lcr.record(
            T0,
            2,
            CoherenceState::Exclusive,
            AccessKind::Load,
            Ring::User,
        );
        assert_eq!(lcr.snapshot(T0).len(), 1);
    }

    #[test]
    fn kernel_accesses_are_filtered() {
        let mut lcr = enabled_lcr(LcrConfig::SPACE_CONSUMING);
        lcr.record(
            T0,
            1,
            CoherenceState::Invalid,
            AccessKind::Load,
            Ring::Kernel,
        );
        assert!(lcr.snapshot(T0).is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut lcr = Lcr::new(3);
        lcr.configure(LcrConfig::SPACE_CONSUMING);
        lcr.enabled = true;
        for pc in 0..5 {
            lcr.record(
                T0,
                pc,
                CoherenceState::Invalid,
                AccessKind::Load,
                Ring::User,
            );
        }
        let pcs: Vec<u64> = lcr.snapshot(T0).iter().map(|r| r.pc).collect();
        assert_eq!(pcs, vec![4, 3, 2]);
    }

    #[test]
    fn enable_pollutes_with_two_exclusive_reads_under_conf2() {
        let mut lcr = Lcr::new(16);
        lcr.configure(LcrConfig::SPACE_CONSUMING);
        lcr.enable(T0);
        let snap = lcr.snapshot(T0);
        assert_eq!(snap.len(), 2);
        assert!(snap
            .iter()
            .all(|r| r.state == CoherenceState::Exclusive && r.pc >= POLLUTION_PC));
    }

    #[test]
    fn enable_pollution_is_invisible_under_space_saving() {
        // Conf1 records shared (not exclusive) loads, so the two exclusive
        // enable reads do not pollute.
        let mut lcr = Lcr::new(16);
        lcr.configure(LcrConfig::SPACE_SAVING);
        lcr.enable(T0);
        assert!(lcr.snapshot(T0).is_empty());
    }

    #[test]
    fn disable_pollutes_then_freezes() {
        let mut lcr = Lcr::new(16);
        lcr.configure(LcrConfig::SPACE_CONSUMING);
        lcr.enable(T0);
        lcr.disable(T0);
        // 2 (enable) + 2 (disable exclusive); the shared read is filtered
        // under Conf2.
        assert_eq!(lcr.snapshot(T0).len(), 4);
        lcr.record(T0, 9, CoherenceState::Invalid, AccessKind::Load, Ring::User);
        assert_eq!(lcr.snapshot(T0).len(), 4);
    }

    #[test]
    fn disable_shared_read_pollutes_under_space_saving() {
        let mut lcr = Lcr::new(16);
        lcr.configure(LcrConfig::SPACE_SAVING);
        lcr.enable(T0);
        lcr.disable(T0);
        let snap = lcr.snapshot(T0);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].state, CoherenceState::Shared);
    }

    #[test]
    #[should_panic(expected = "LCR capacity must be positive")]
    fn zero_capacity_is_rejected_not_clamped() {
        let _ = Lcr::new(0);
    }

    #[test]
    fn clean_clears_only_the_given_thread() {
        let mut lcr = enabled_lcr(LcrConfig::SPACE_CONSUMING);
        lcr.record(T0, 1, CoherenceState::Invalid, AccessKind::Load, Ring::User);
        lcr.record(T1, 2, CoherenceState::Invalid, AccessKind::Load, Ring::User);
        lcr.clean(T0);
        assert!(lcr.snapshot(T0).is_empty());
        assert_eq!(lcr.snapshot(T1).len(), 1);
    }
}
