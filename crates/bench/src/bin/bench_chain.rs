//! Evaluates causal-chain quality — does the reconstructed storyline
//! contain the ground-truth root cause, and how strong is its weakest
//! evidence — and writes `results/BENCH_chain.json` plus one
//! `results/CHAIN_<id>.json` artifact per benchmark.
//!
//! For one sequential benchmark (sort, LBRA) and one concurrency
//! benchmark (apache4, LCRA Conf2) the harness collects the same
//! witness sets at `threads(1)` and at `default_threads()`, rebuilds
//! the [`CausalChain`] from each collection, and gates:
//!
//! * `chain_root_cause_link_rank` — 1-based link rank of the
//!   ground-truth root-cause event in the chain (lower is better; a
//!   chain that loses the root cause loses the metric and fails CI).
//! * `chain_links` — storyline length; a ballooning chain is a noisier
//!   storyline (higher is worse).
//! * `min_link_support_floor` — the weakest link's support score
//!   (`_floor`: lower is worse — evidence quality must not erode).
//! * `thread_mismatch` — 0 when the `threads(1)` and
//!   `default_threads()` chains are byte-identical JSON, 1 otherwise
//!   (the determinism acceptance invariant).

use stm_bench::{json_rank, mark, MetricsEmitter};
use stm_core::diagnose::failure_profile;
use stm_core::engine::{CollectedProfiles, DiagnosisSession, ProfileKind};
use stm_core::profile::{decode_lbr, decode_lcr};
use stm_core::runner::Runner;
use stm_forensics::{CausalChain, ChainLink};
use stm_machine::report::ProfileData;
use stm_suite::eval::{default_threads, expand_workloads, lbra_runner, lcra_runner};
use stm_suite::Benchmark;
use stm_telemetry::json::Json;

fn main() {
    let mut metrics = MetricsEmitter::new("chain");
    println!("Causal-chain quality (root-cause link rank; lower is better)");
    println!(
        "{:<10} {:>6} {:>10} {:>8} {:>12} {:>14}",
        "bench", "kind", "root@link", "links", "min_support", "thread_match"
    );

    let mut failed = false;
    for (id, lbr) in [("sort", true), ("apache4", false)] {
        let b = stm_suite::by_id(id).expect("benchmark exists");
        let runner = if lbr {
            lbra_runner(&b)
        } else {
            lcra_runner(&b)
        };
        let (failing, passing) = expand_workloads(&b, &runner);
        let collect = |threads: usize| -> CollectedProfiles {
            DiagnosisSession::from_runner(&runner)
                .failure(b.truth.spec.clone())
                .failing(failing.clone())
                .passing(passing.clone())
                .profile_kind(if lbr {
                    ProfileKind::Lbr
                } else {
                    ProfileKind::Lcr
                })
                .threads(threads)
                .collect()
                .expect("collection succeeds")
        };

        let serial = chain_for(&b, &runner, &collect(1), lbr);
        let parallel = chain_for(&b, &runner, &collect(default_threads()), lbr);
        let thread_mismatch = usize::from(
            serial.as_ref().map(|c| c.to_json().encode())
                != parallel.as_ref().map(|c| c.to_json().encode()),
        );

        let Some(chain) = parallel else {
            println!(
                "{id:<10} {:>6} {:>10} {:>8} {:>12} {:>14}",
                "-", "-", 0, "-", "-"
            );
            eprintln!("{id}: no chain reconstructed");
            failed = true;
            metrics.checkpoint(
                id,
                vec![
                    ("chain_links", Json::from(0usize)),
                    ("chain_root_cause_link_rank", Json::Null),
                    ("min_link_support_floor", Json::Null),
                    ("thread_mismatch", Json::from(thread_mismatch)),
                ],
            );
            continue;
        };
        let root_rank = chain.link_rank_of(|l| is_root_cause(&b, lbr, l));
        let min_support = chain.min_link_support();

        println!(
            "{:<10} {:>6} {:>10} {:>8} {:>12.3} {:>14}",
            id,
            chain.kind.as_str(),
            mark(root_rank),
            chain.links.len(),
            min_support,
            if thread_mismatch == 0 { "yes" } else { "NO" },
        );
        if root_rank.is_none() {
            eprintln!("{id}: chain does not contain the ground-truth root cause");
            failed = true;
        }
        if thread_mismatch != 0 {
            eprintln!("{id}: chain differs between threads(1) and default_threads()");
            failed = true;
        }

        metrics.checkpoint(
            id,
            vec![
                ("chain_links", Json::from(chain.links.len())),
                ("chain_root_cause_link_rank", json_rank(root_rank)),
                ("min_link_support_floor", Json::from(min_support)),
                ("thread_mismatch", Json::from(thread_mismatch)),
            ],
        );

        let artifact = Json::obj([
            ("benchmark", Json::from(id)),
            ("mode", Json::from(if lbr { "lbra" } else { "lcra" })),
            ("root_cause_link_rank", json_rank(root_rank)),
            ("thread_mismatch", Json::from(thread_mismatch)),
            ("chain", chain.to_json()),
        ]);
        let path = format!("results/CHAIN_{id}.json");
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&path, artifact.encode() + "\n"))
        {
            Ok(()) => println!("wrote {path}"),
            Err(e) => stm_telemetry::log::warn(
                "bench",
                "artifact.write_failed",
                vec![("path", path), ("error", e.to_string())],
            ),
        }
    }

    match metrics.finish() {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
    if failed {
        std::process::exit(1);
    }
}

/// Reconstructs the benchmark's chain from one collection — the same
/// post-site-guard-exclusion ranking and decoded failure traces the
/// `diagnose_report` artifact uses.
fn chain_for(
    b: &Benchmark,
    runner: &Runner,
    profiles: &CollectedProfiles,
    lbr: bool,
) -> Option<CausalChain> {
    let program = runner.machine().program();
    let layout = runner.machine().layout();
    if lbr {
        let mut d = profiles.lbra();
        d.exclude_site_guards(program, &b.truth.spec);
        let traces: Vec<_> = profiles
            .failure_runs()
            .iter()
            .filter_map(|run| {
                let p = failure_profile(&run.report, &b.truth.spec)?;
                match &p.data {
                    ProfileData::Lbr(records) => {
                        Some((run.witness.clone(), decode_lbr(layout, records)))
                    }
                    ProfileData::Lcr(_) => None,
                }
            })
            .collect();
        CausalChain::from_lbra(
            Some(program),
            &d.ranked,
            &traces,
            d.stats.failure_runs_used,
            d.stats.success_runs_used,
        )
    } else {
        let d = profiles.lcra();
        let traces: Vec<_> = profiles
            .failure_runs()
            .iter()
            .filter_map(|run| {
                let p = failure_profile(&run.report, &b.truth.spec)?;
                match &p.data {
                    ProfileData::Lcr(records) => {
                        Some((run.witness.clone(), decode_lcr(layout, records)))
                    }
                    ProfileData::Lbr(_) => None,
                }
            })
            .collect();
        CausalChain::from_lcra(
            Some(program),
            &d.ranked,
            &traces,
            d.stats.failure_runs_used,
            d.stats.success_runs_used,
        )
    }
}

/// Whether a link's canonical event form names the benchmark's
/// ground-truth root cause.
fn is_root_cause(b: &Benchmark, lbr: bool, l: &ChainLink) -> bool {
    if lbr {
        let Some(target) = b.truth.target_branch() else {
            return false;
        };
        l.event.starts_with(&format!("{target}="))
    } else {
        let Some(fpe) = b.truth.fpe else { return false };
        let Some(state) = fpe.conf2_state else {
            return false;
        };
        l.event.ends_with(&format!("@{}:{state}", fpe.loc))
    }
}
