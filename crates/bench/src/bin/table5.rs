//! Regenerates Table 5: resolution of control-flow uncertainties by
//! LBRLOG — the useful-branch ratio of every application's logging sites,
//! computed by the static backward path analysis of §7.1.1. Also writes
//! `results/BENCH_table5.json` with the per-benchmark ratios.

use stm_bench::{MetricsEmitter, TelemetryCli};
use stm_core::analysis::useful_branch_ratio;
use stm_telemetry::json::Json;

/// Paper values for the 13 LBR applications.
const PAPER: &[(&str, f64)] = &[
    ("apache1", 0.86),
    ("apache2", 0.86),
    ("apache3", 0.86),
    ("cp", 0.77),
    ("cppcheck1", 0.98),
    ("cppcheck2", 0.98),
    ("cppcheck3", 0.98),
    ("lighttpd", 0.84),
    ("ln", 0.81),
    ("mv", 0.74),
    ("paste", 0.86),
    ("pbzip1", 0.81),
    ("pbzip2", 0.81),
    ("rm", 0.79),
    ("sort", 0.91),
    ("squid1", 0.88),
    ("squid2", 0.88),
    ("tac", 0.89),
    ("tar1", 0.84),
    ("tar2", 0.84),
];

fn main() {
    let (tele, _) = TelemetryCli::from_env();
    let _metrics = tele.apply();
    let mut metrics = MetricsEmitter::new("table5");
    println!("Table 5: Resolution of control-flow uncertainties by LBRLOG");
    println!(
        "{:<12} {:>10} {:>12} {:>12}",
        "Application", "#LogSites", "ratio(our)", "ratio(paper)"
    );
    let mut ours = Vec::new();
    for b in stm_suite::sequential() {
        let r = useful_branch_ratio(&b.program, 16);
        let paper = PAPER
            .iter()
            .find(|(id, _)| *id == b.info.id)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        println!(
            "{:<12} {:>10} {:>12.2} {:>12.2}",
            b.info.id, r.sites, r.average, paper
        );
        ours.push(r.average);
        metrics.checkpoint(
            b.info.id,
            vec![
                ("log_sites", Json::from(r.sites as u64)),
                ("useful_branch_ratio", Json::from(r.average)),
                ("paper_ratio", Json::from(paper)),
            ],
        );
    }
    let avg = ours.iter().sum::<f64>() / ours.len() as f64;
    println!("\naverage useful-branch ratio (our programs): {avg:.2}");
    println!("paper range: 0.74 - 0.98 across 6945 logging sites of 13 applications");
    match metrics.finish() {
        Ok(path) => println!("wrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
    if let Err(e) = tele.finish() {
        stm_telemetry::log::warn("bench", "trace.write_failed", vec![("error", e)]);
    }
}
