//! Experiment E8 — LBR vs. BTS (§2.1): the Branch Trace Store keeps the
//! whole branch history in memory and costs 20-100% at run time, which is
//! why the system uses the fixed-size LBR instead.

use stm_bench::bts_comparison;

fn main() {
    println!("Whole-execution branch tracing (BTS) vs. LBR-only:");
    println!(
        "{:<10} {:>12} {:>12} {:>10}",
        "App.", "LBR (s)", "BTS (s)", "overhead"
    );
    for b in stm_suite::sequential() {
        let (base, bts) = bts_comparison(&b, 60);
        let pct = (bts - base) / base * 100.0;
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>9.1}%",
            b.info.id, base, bts, pct
        );
    }
    println!("\npaper: BTS costs 20-100% and is unsuitable for production runs (S2.1).");
}
