//! Fleet-daemon benchmark: sustained sharded ingest throughput, per-
//! shard time-to-converged, and exact shed accounting under forced
//! overload. Writes `results/BENCH_fleet.json`.
//!
//! Two phases over the same snapshot pools (sort → LBRA, apache4 →
//! LCRA Conf2; both batch-collected once, then replayed by simulated
//! endpoints):
//!
//! * **Sustained** — ≥1000 seeded endpoints push snapshots at four
//!   shards (`sort-0/1`, `apache4-0/1`) through queues deep enough to
//!   never shed. The wall-clock headline (`endpoints_per_sec`) is
//!   machine-dependent and stays ungated; the per-shard witness counts
//!   to the early-stop verdict are fully deterministic — each shard is
//!   one FIFO consumer, so ingest order equals the seeded submission
//!   order — and gate against the baseline.
//! * **Overload** — every shard is paused (its worker held off) and
//!   fed `capacity + overflow` snapshots, so exactly `overflow` must
//!   shed — half the shards under drop-oldest, half under reject-new —
//!   with one `fleet`/`shed` event per shed snapshot. The exact counts
//!   gate; a shed going missing (or an extra one appearing) is a
//!   backpressure accounting bug.

use std::time::Instant;

use stm_bench::MetricsEmitter;
use stm_core::converge::StabilityPolicy;
use stm_core::diagnose::Quotas;
use stm_core::engine::{CollectedProfiles, DiagnosisSession, ProfileKind};
use stm_fleet::{FleetDaemon, ShardConfig, ShedPolicy, Snapshot, SubmitOutcome};
use stm_suite::eval::{default_threads, expand_workloads, lbra_runner, lcra_runner};
use stm_telemetry::json::Json;

/// Simulated endpoints in the sustained phase (≥1000 per the
/// acceptance bar; spread across all four shards by the schedule).
const ENDPOINTS: usize = 1200;
/// Queue capacity in the overload phase.
const CAPACITY: usize = 32;
/// Submissions beyond capacity per paused shard — the exact shed count.
const OVERFLOW: usize = 16;
/// Endpoint schedule seed: fixing it pins every gated metric.
const SEED: u64 = 0xF1EE7;

const SHARDS: [&str; 4] = ["sort-0", "sort-1", "apache4-0", "apache4-1"];

/// xorshift64* over the schedule seed.
struct Schedule(u64);

impl Schedule {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0 = self.0.wrapping_mul(0x2545_F491_4F6C_DD1D);
        self.0
    }
}

/// Batch-collects the replayable snapshot pool for one suite benchmark.
fn pool(
    id: &str,
    lbr: bool,
) -> (
    CollectedProfiles,
    Vec<(bool, String, stm_machine::report::RunReport)>,
) {
    let b = stm_suite::by_id(id).expect("benchmark exists");
    let runner = if lbr {
        lbra_runner(&b)
    } else {
        lcra_runner(&b)
    };
    let (failing, passing) = expand_workloads(&b, &runner);
    let profiles = DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(if lbr {
            ProfileKind::Lbr
        } else {
            ProfileKind::Lcr
        })
        .threads(default_threads())
        .collect()
        .expect("pool collection succeeds");
    let mut snaps = Vec::new();
    for run in profiles.failure_runs() {
        snaps.push((true, run.witness.clone(), run.report.clone()));
    }
    for run in profiles.success_runs() {
        snaps.push((false, run.witness.clone(), run.report.clone()));
    }
    (profiles, snaps)
}

fn add_shards(
    fleet: &mut FleetDaemon,
    pools: &[&CollectedProfiles; 2],
    config: impl Fn(usize) -> ShardConfig,
) {
    for (i, name) in SHARDS.iter().enumerate() {
        let profiles = pools[i / 2];
        fleet.add_shard(
            *name,
            profiles.runner().machine().layout().clone(),
            profiles.spec().clone(),
            config(i),
        );
    }
}

fn main() {
    // Pools are collected before the emitter exists (telemetry off), so
    // the gated counter deltas cover only daemon activity.
    let (sort_profiles, sort_snaps) = pool("sort", true);
    let (apache_profiles, apache_snaps) = pool("apache4", false);
    let pools = [&sort_profiles, &apache_profiles];
    let snaps = [&sort_snaps, &apache_snaps];

    let mut metrics = MetricsEmitter::new("fleet");
    println!("Fleet daemon: sharded ingest with explicit backpressure");

    // ---- Phase 1: sustained ingest, no shedding ---------------------
    let mut fleet = FleetDaemon::new();
    add_shards(&mut fleet, &pools, |_| {
        // Queues deep enough that backpressure never triggers: this
        // phase measures throughput and convergence, not shedding.
        ShardConfig::default()
            .queue_capacity(ENDPOINTS)
            .policy(StabilityPolicy::default())
    });
    fleet.start();
    let started = Instant::now();
    let mut schedule = Schedule(SEED | 1);
    for endpoint in 0..ENDPOINTS {
        let r = schedule.next();
        let shard_idx = (r % SHARDS.len() as u64) as usize;
        let pool = snaps[shard_idx / 2];
        let (is_failure, witness, report) = &pool[(r >> 8) as usize % pool.len()];
        let outcome = fleet.submit(Snapshot {
            shard: SHARDS[shard_idx].to_string(),
            witness: format!("ep{endpoint}:{witness}"),
            is_failure: *is_failure,
            report: report.clone(),
        });
        assert_eq!(
            outcome,
            SubmitOutcome::Enqueued,
            "sustained phase must not shed"
        );
    }
    fleet.drain();
    let elapsed = started.elapsed();
    let reports = fleet.finish();
    let eps = ENDPOINTS as f64 / elapsed.as_secs_f64().max(1e-9);
    println!(
        "  sustained: {ENDPOINTS} endpoints in {:.1} ms ({eps:.0}/s)",
        elapsed.as_secs_f64() * 1e3
    );
    println!(
        "  {:<12} {:>10} {:>12} {:>10} {:>10}",
        "shard", "verdict", "to-verdict", "ingested", "after-stop"
    );
    for name in SHARDS {
        let r = &reports[name];
        let witnesses = r.report.as_ref().map(|c| c.evidence.witnesses).unwrap_or(0);
        println!(
            "  {:<12} {:>10} {:>12} {:>10} {:>10}",
            name, r.verdict, witnesses, r.ingested, r.after_stop
        );
        metrics.checkpoint(
            name,
            vec![
                ("witnesses_to_verdict", Json::from(witnesses)),
                ("ingested", Json::from(r.ingested)),
                ("skipped", Json::from(r.skipped)),
                ("after_stop", Json::from(r.after_stop)),
                ("shed", Json::from(r.shed)),
                (
                    "not_converged",
                    Json::from(u64::from(r.verdict != "converged")),
                ),
            ],
        );
    }

    // ---- Phase 2: forced overload, exact shed accounting ------------
    // Shed warnings echo to stderr by default; 64 of them would bury
    // the table. The structured events still land in the buffer.
    stm_telemetry::log::set_stderr_level(None);
    let _ = stm_telemetry::log::take_events();
    let mut fleet = FleetDaemon::new();
    add_shards(&mut fleet, &pools, |i| {
        ShardConfig::default()
            .queue_capacity(CAPACITY)
            // `never()` + roomy quotas: every kept snapshot ingests, so
            // the gated ingest count is exactly the queue capacity.
            .policy(StabilityPolicy::never())
            .quotas(
                Quotas::default()
                    .failure_profiles(usize::MAX)
                    .success_profiles(usize::MAX)
                    .max_runs(usize::MAX),
            )
            .shed(if i % 2 == 0 {
                ShedPolicy::DropOldest
            } else {
                ShedPolicy::RejectNew
            })
    });
    fleet.start();
    for name in SHARDS {
        assert!(fleet.pause(name), "shard {name} exists");
    }
    let mut schedule = Schedule(SEED.wrapping_add(0xBEEF) | 1);
    let mut shed_outcomes = [0u64; 4];
    for (i, name) in SHARDS.iter().enumerate() {
        let pool = snaps[i / 2];
        for n in 0..CAPACITY + OVERFLOW {
            let (is_failure, witness, report) = &pool[schedule.next() as usize % pool.len()];
            match fleet.submit(Snapshot {
                shard: name.to_string(),
                witness: format!("overload{n}:{witness}"),
                is_failure: *is_failure,
                report: report.clone(),
            }) {
                SubmitOutcome::Enqueued => {}
                SubmitOutcome::ShedOldest | SubmitOutcome::RejectedNew => shed_outcomes[i] += 1,
                other => panic!("overload submit returned {other:?}"),
            }
        }
    }
    for name in SHARDS {
        fleet.resume(name);
    }
    fleet.drain();
    let shed_events = stm_telemetry::log::take_events()
        .iter()
        .filter(|e| e.component == "fleet" && e.event == "shed")
        .count();
    let reports = fleet.finish();
    stm_telemetry::log::set_stderr_level(Some(stm_telemetry::log::Level::Warn));
    println!(
        "  overload: {} submissions/shard against capacity {CAPACITY} \
         ({shed_events} shed events)",
        CAPACITY + OVERFLOW
    );
    println!(
        "  {:<12} {:>12} {:>8} {:>10}",
        "shard", "policy", "shed", "ingested"
    );
    for (i, name) in SHARDS.iter().enumerate() {
        let r = &reports[*name];
        let policy = if i % 2 == 0 {
            "drop-oldest"
        } else {
            "reject-new"
        };
        println!(
            "  {:<12} {:>12} {:>8} {:>10}",
            name, policy, r.shed, r.ingested
        );
        assert_eq!(r.shed, shed_outcomes[i], "{name}: counter vs outcomes");
        metrics.checkpoint(
            &format!("{name}-overload"),
            vec![
                ("shed", Json::from(r.shed)),
                ("ingested", Json::from(r.ingested)),
                ("skipped", Json::from(r.skipped)),
                (
                    "shed_delta_vs_expected",
                    Json::from(r.shed.abs_diff(OVERFLOW as u64)),
                ),
            ],
        );
    }
    let total_shed: u64 = reports.values().map(|r| r.shed).sum();
    metrics.checkpoint(
        "overload-events",
        vec![(
            "missing_shed_events",
            Json::from((total_shed as usize).abs_diff(shed_events)),
        )],
    );

    metrics.top_level("endpoints", Json::from(ENDPOINTS));
    metrics.top_level("endpoints_per_sec", Json::from(eps));
    metrics.top_level("sustained_ms", Json::from(elapsed.as_secs_f64() * 1e3));
    match metrics.finish() {
        Ok(path) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("bench_fleet: could not write results: {e}");
            std::process::exit(1);
        }
    }
}
