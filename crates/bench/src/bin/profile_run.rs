//! Profiles one suite benchmark's full diagnosis, inside and out:
//!
//! * **guest side** — runs the collection session with the interpreter's
//!   sampling profiler on ([`RunConfig::profile_period`]), folds every
//!   kept witness run into a [`GuestProfile`], and writes
//!   `results/PROFILE_<id>.folded` (flamegraph.pl/inferno input) plus
//!   hot-block and lock-contention tables. Samples fire on retired
//!   instructions, so these artifacts are byte-identical across engine
//!   thread counts.
//! * **pipeline side** — collects the session's telemetry spans and runs
//!   the [`CriticalPathReport`] sweep over them, attributing every
//!   microsecond of session wall-clock to a phase (job execution, queue
//!   wait, result hold-back, ...). Wall-clock numbers are
//!   machine-dependent by nature.
//!
//! Usage: `profile_run <benchmark-id> [--threads N] [--period P]
//! [--top K] [--check] [--trace-out FILE]`
//!
//! `--check` turns the run into a smoke gate for CI: it fails unless the
//! folded output is non-empty and the critical path covers ≥95% of the
//! session wall-clock. `--trace-out` additionally exports the Chrome
//! trace (with per-job flow arrows) from the same spans.
//!
//! [`RunConfig::profile_period`]: stm_machine::interp::RunConfig
//! [`GuestProfile`]: stm_profiler::GuestProfile
//! [`CriticalPathReport`]: stm_profiler::CriticalPathReport

use stm_bench::{write_trace, TelemetryCli};
use stm_core::engine::{DiagnosisSession, ProfileKind};
use stm_core::runner::Runner;
use stm_core::transform::instrument;
use stm_machine::events::LcrConfig;
use stm_machine::interp::{Machine, RunConfig};
use stm_profiler::{CriticalPathReport, GuestProfile, DEFAULT_PERIOD};
use stm_suite::eval::{default_threads, expand_workloads, reactive_options};
use stm_suite::BugClass;
use stm_telemetry::json::Json;

fn usage() -> ! {
    eprintln!(
        "usage: profile_run <benchmark-id> [--threads N] [--period P] [--top K] [--check] [--trace-out FILE]"
    );
    eprintln!("benchmarks:");
    for b in stm_suite::all() {
        eprintln!("  {:<12} ({:?})", b.info.id, b.info.bug_class);
    }
    std::process::exit(2);
}

fn main() {
    let (tele, rest) = TelemetryCli::from_env();
    let mut id: Option<String> = None;
    let mut threads = default_threads();
    let mut period = DEFAULT_PERIOD;
    let mut top_k = 10usize;
    let mut check = false;
    let mut args = rest.into_iter();
    while let Some(a) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a number");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--bench" => id = args.next(),
            "--threads" => threads = num("--threads") as usize,
            "--period" => period = num("--period"),
            "--top" => top_k = num("--top") as usize,
            "--check" => check = true,
            other if !other.starts_with("--") && id.is_none() => id = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(id) = id else { usage() };
    let Some(b) = stm_suite::by_id(&id) else {
        eprintln!("unknown benchmark {id:?}; run with no arguments for the list");
        std::process::exit(2);
    };
    if period == 0 {
        eprintln!("--period must be nonzero (period 0 disables the guest profiler)");
        std::process::exit(2);
    }

    // Same reactive deployments the Table 6/7 harnesses use.
    let (runner, kind) = match b.info.bug_class {
        BugClass::Sequential => {
            let opts = reactive_options(&b, true, None);
            (
                Runner::new(Machine::new(instrument(&b.program, &opts))),
                ProfileKind::Lbr,
            )
        }
        BugClass::Concurrency => {
            let opts = reactive_options(&b, false, Some(LcrConfig::SPACE_CONSUMING));
            (
                Runner::new(Machine::new(instrument(&b.program, &opts))),
                ProfileKind::Lcr,
            )
        }
    };
    let (failing, passing) = expand_workloads(&b, &runner);
    if failing.is_empty() {
        eprintln!("{id}: no failing workload reproduces the target failure");
        std::process::exit(1);
    }

    // The pipeline trace needs telemetry regardless of the shared flags;
    // start it from a clean span buffer so the critical path sees only
    // this session. `apply` also starts the observatory endpoint when
    // `--metrics-addr` was given.
    let _metrics = tele.apply();
    stm_telemetry::set_enabled(true);
    let _ = stm_telemetry::take_spans();
    let profiles = DiagnosisSession::from_runner(&runner)
        .run_config(RunConfig {
            profile_period: period,
            ..runner.run_config().clone()
        })
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(kind)
        .threads(threads)
        .collect()
        .unwrap_or_else(|e| {
            eprintln!("{id}: collection failed: {e}");
            std::process::exit(1);
        });
    let spans = stm_telemetry::take_spans();

    let mut guest = GuestProfile::new(runner.machine().program(), period);
    for run in profiles
        .failure_runs()
        .iter()
        .chain(profiles.success_runs())
    {
        guest.add_run(&run.report);
    }
    let critical = CriticalPathReport::analyze(&spans);

    let folded = guest.folded();
    let mut md = format!(
        "# Profile: {id}\n\n## Guest profile\n\n{}",
        guest.render_md(top_k)
    );
    let mut doc = vec![
        ("bench", Json::from(id.as_str())),
        ("threads", Json::from(threads as u64)),
        ("guest", guest.to_json(top_k)),
    ];
    match &critical {
        Some(c) => {
            md.push_str("\n## Pipeline critical path\n\n");
            md.push_str(&c.render_md(top_k));
            doc.push(("critical_path", c.to_json()));
        }
        None => {
            md.push_str("\n## Pipeline critical path\n\n(no completed session span)\n");
            doc.push(("critical_path", Json::Null));
        }
    }

    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("cannot create results/: {e}");
        std::process::exit(1);
    }
    let base = format!("results/PROFILE_{id}");
    let io = std::fs::write(format!("{base}.folded"), &folded)
        .and_then(|_| std::fs::write(format!("{base}.md"), &md))
        .and_then(|_| std::fs::write(format!("{base}.json"), Json::obj(doc).encode() + "\n"));
    if let Err(e) = io {
        eprintln!("{id}: write failed: {e}");
        std::process::exit(1);
    }
    println!("wrote {base}.folded, {base}.json and {base}.md");

    match guest.top_frame() {
        Some((name, n)) => println!(
            "{id}: {} samples across {} runs (period {period}); hottest function {name} ({n} samples)",
            guest.sample_count(),
            guest.run_count()
        ),
        None => println!("{id}: no samples (runs shorter than the period?)"),
    }
    if let Some(c) = &critical {
        println!(
            "critical path: wall {} us, {} jobs on {} worker(s), parallel efficiency {:.1}%, coverage {:.1}%",
            c.wall_us,
            c.jobs,
            c.workers,
            c.parallel_efficiency_pct,
            c.coverage_pct()
        );
    }

    if tele.trace_out.is_some() {
        if let Err(e) = write_trace(&spans, tele.trace_out.as_deref().unwrap()) {
            stm_telemetry::log::warn("bench", "trace.write_failed", vec![("error", e)]);
        }
    }

    if check {
        let mut bad = vec![];
        if folded.is_empty() {
            bad.push("folded output is empty".to_string());
        }
        match &critical {
            Some(c) if c.coverage_pct() >= 95.0 => {}
            Some(c) => bad.push(format!(
                "critical-path coverage {:.1}% < 95%",
                c.coverage_pct()
            )),
            None => bad.push("no completed engine.collect session in the trace".to_string()),
        }
        if !bad.is_empty() {
            for m in &bad {
                eprintln!("{id}: CHECK FAILED: {m}");
            }
            std::process::exit(1);
        }
        println!("{id}: checks passed");
    }
}
