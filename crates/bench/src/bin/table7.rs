//! Regenerates Table 7: failure-diagnosis capability of LCR over the 11
//! concurrency-bug failures (LCRLOG under both configurations, LCRA under
//! the space-consuming Conf2). Also writes `results/BENCH_table7.json`
//! with per-benchmark ranks and run volumes.

use stm_bench::{json_rank, mark, MetricsEmitter, TelemetryCli};
use stm_suite::eval::evaluate_concurrency;

fn main() {
    let (tele, _) = TelemetryCli::from_env();
    let _metrics = tele.apply();
    let mut metrics = MetricsEmitter::new("table7");
    println!("Table 7: Failure diagnosis capability of LCR (paper values in parentheses)");
    println!(
        "{:<12} {:>16} {:>16} {:>12}",
        "ID", "LCRLOG (Conf1)", "LCRLOG (Conf2)", "LCRA"
    );
    for b in stm_suite::concurrency() {
        let row = evaluate_concurrency(&b);
        let p = &b.info.paper;
        println!(
            "{:<12} {:>9}{:>7} {:>9}{:>7} {:>6}{:>6}",
            row.id,
            mark(row.lcrlog_conf1),
            format!(
                "({})",
                p.lcrlog_conf1.map(|m| m.to_string()).unwrap_or_default()
            ),
            mark(row.lcrlog_conf2),
            format!(
                "({})",
                p.lcrlog_conf2.map(|m| m.to_string()).unwrap_or_default()
            ),
            mark(row.lcra),
            format!("({})", p.lcra.map(|m| m.to_string()).unwrap_or_default()),
        );
        metrics.checkpoint(
            b.info.id,
            vec![
                ("lcrlog_conf1", json_rank(row.lcrlog_conf1)),
                ("lcrlog_conf2", json_rank(row.lcrlog_conf2)),
                ("lcra", json_rank(row.lcra)),
            ],
        );
    }
    println!("\nConf1 = space-saving (invalid loads/stores + shared loads);");
    println!("Conf2 = space-consuming (invalid loads/stores + exclusive loads); LCRA uses Conf2.");
    match metrics.finish() {
        Ok(path) => println!("wrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
    if let Err(e) = tele.finish() {
        stm_telemetry::log::warn("bench", "trace.write_failed", vec![("error", e)]);
    }
}
