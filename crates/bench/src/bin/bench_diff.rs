//! The benchmark regression gate: diffs two `results/BENCH_*.json`
//! generations and fails (exit 1) when any metric regressed beyond
//! tolerance under the higher-is-worse rule (ranks, ring positions,
//! overheads and telemetry counters all degrade upward).
//!
//! Usage: `bench_diff [--tol-pct N] <baseline.json> <candidate.json>`
//! (default tolerance: 10%).
//!
//! Exit codes: 0 = no regressions, 1 = regressions found, 2 = bad
//! invocation or malformed input.

use stm_forensics::{diff_benchmarks, DiffOptions};
use stm_telemetry::json::Json;

fn usage() -> ! {
    eprintln!("usage: bench_diff [--tol-pct N] <baseline.json> <candidate.json>");
    std::process::exit(2);
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_diff: cannot read {path}: {e}");
        std::process::exit(2);
    });
    Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("bench_diff: {path} is not valid JSON: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut opts = DiffOptions::default();
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tol-pct" => {
                let Some(v) = args.next().and_then(|v| v.parse().ok()) else {
                    usage();
                };
                opts.tolerance_pct = v;
            }
            "--help" | "-h" => usage(),
            p => paths.push(p.to_string()),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        usage();
    };

    let base = load(baseline);
    let cand = load(candidate);
    let diff = diff_benchmarks(&base, &cand, &opts).unwrap_or_else(|e| {
        eprintln!("bench_diff: {e}");
        std::process::exit(2);
    });
    print!("{}", diff.render());
    if diff.has_regressions() {
        std::process::exit(1);
    }
}
