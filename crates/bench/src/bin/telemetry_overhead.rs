//! Measures the cost of the observability layers themselves on three
//! suite benchmarks: perf-workload throughput with telemetry collection
//! disabled (the hooks gate on one relaxed atomic load) versus enabled
//! (counter batches, ring-push counters and spans), with the guest
//! sampling profiler on at its default period (telemetry off — the two
//! costs are independent), and with the observatory metrics endpoint
//! serving scrapes while the enabled workload runs (a polling thread
//! hits `/metrics` and `/health` throughout the timed region, proving
//! live serving stays within the telemetry budget; zero extra cost when
//! no server runs, since the engine never touches it). Writes
//! `results/BENCH_telemetry_overhead.json`.
//!
//! Usage: `telemetry_overhead [--iters N]` (default 60 runs per sample).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use stm_core::runner::Runner;
use stm_machine::interp::{Machine, RunConfig};
use stm_observatory::watch::http_get;
use stm_observatory::MetricsServer;
use stm_profiler::DEFAULT_PERIOD;
use stm_suite::Benchmark;
use stm_telemetry::json::Json;

const BENCHMARKS: &[&str] = &["sort", "rm", "apache3"];
/// Timing samples per mode; the minimum is kept. Sized so at least one
/// sample per mode lands in an unpreempted scheduler window even on a
/// busy host — the modes differ by percents, preemption by multiples.
const SAMPLES: u32 = 9;
/// Scrape cadence while timing the server-enabled mode — aggressive
/// compared to a production Prometheus interval, to bound the cost from
/// above.
const SCRAPE_EVERY: Duration = Duration::from_millis(20);

/// Wall-clock ns/run for `iters` perf-workload runs, best of [`SAMPLES`].
fn ns_per_run(runner: &Runner, b: &Benchmark, iters: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for i in 0..iters {
            let mut w = b.workloads.perf.clone();
            w.seed = i as u64;
            let _ = runner.run(&w);
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Times the enabled workload while a [`MetricsServer`] answers a
/// scraper thread polling `/metrics` and `/health` every
/// [`SCRAPE_EVERY`]. Returns `(ns_per_run, scrapes_served)`. Telemetry
/// must already be enabled.
fn timed_with_server(runner: &Runner, b: &Benchmark, iters: u32) -> (f64, u64) {
    let server = MetricsServer::start("127.0.0.1:0").expect("bind metrics endpoint");
    let addr = server.addr();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let scraper = s.spawn(|| {
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                if http_get(addr, "/metrics", Duration::from_secs(2)).is_ok() {
                    scrapes += 1;
                }
                if http_get(addr, "/health", Duration::from_secs(2)).is_ok() {
                    scrapes += 1;
                }
                std::thread::sleep(SCRAPE_EVERY);
            }
            scrapes
        });
        let ns = ns_per_run(runner, b, iters);
        stop.store(true, Ordering::Relaxed);
        let scrapes = scraper.join().expect("scraper thread");
        (ns, scrapes)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let iters: u32 = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);

    println!("Observability overhead ({iters} runs/sample, best of {SAMPLES}):");
    println!(
        "{:<12} {:>14} {:>14} {:>10} {:>14} {:>10} {:>14} {:>9}",
        "Benchmark",
        "off ns/run",
        "on ns/run",
        "telemetry",
        "sampled ns/run",
        "sampling",
        "server ns/run",
        "serving"
    );
    let mut rows = std::collections::BTreeMap::new();
    for id in BENCHMARKS {
        let b = stm_suite::by_id(id).expect("suite benchmark");
        let runner = Runner::new(Machine::new(b.program.clone()));
        let sampling_runner =
            Runner::new(Machine::new(b.program.clone())).with_run_config(RunConfig {
                profile_period: DEFAULT_PERIOD,
                ..RunConfig::default()
            });
        // Warm up caches and the allocator before any mode is timed.
        let _ = ns_per_run(&runner, &b, iters.min(10));

        stm_telemetry::set_enabled(false);
        let off = ns_per_run(&runner, &b, iters);
        let sampled = ns_per_run(&sampling_runner, &b, iters);
        stm_telemetry::set_enabled(true);
        let before = stm_telemetry::metrics_snapshot();
        let on = ns_per_run(&runner, &b, iters);
        let delta = stm_telemetry::metrics_snapshot().delta_since(&before);

        // Server-enabled mode: same enabled workload, but with the
        // observatory endpoint live and a scraper polling it the whole
        // time. The delta against `on` is the cost of *serving*.
        let (with_server, scrapes) = timed_with_server(&runner, &b, iters);
        stm_telemetry::set_enabled(false);

        // The enabled phase doubles as a data check: the histogram delta
        // must show exactly the timed runs (SAMPLES timed batches).
        let (runs, steps_per_run) = delta
            .histograms
            .iter()
            .find(|h| h.name == "machine.run_steps")
            .map(|h| (h.count, h.sum as f64 / h.count.max(1) as f64))
            .unwrap_or((0, 0.0));

        let pct = |cost: f64| ((cost - off) / off * 100.0).max(0.0);
        let telemetry_pct = pct(on);
        let sampling_pct = pct(sampled);
        // Serving cost relative to the already-enabled baseline: the
        // endpoint only ever runs with collection on.
        let server_pct = ((with_server - on) / on * 100.0).max(0.0);
        println!(
            "{id:<12} {off:>14.0} {on:>14.0} {telemetry_pct:>9.2}% {sampled:>14.0} {sampling_pct:>9.2}% {with_server:>14.0} {server_pct:>8.2}% ({scrapes} scrapes)"
        );
        rows.insert(
            id.to_string(),
            Json::obj([
                ("disabled_ns_per_run", Json::from(off)),
                ("enabled_ns_per_run", Json::from(on)),
                ("overhead_pct", Json::from(telemetry_pct)),
                ("sampling_ns_per_run", Json::from(sampled)),
                ("sampling_overhead_pct", Json::from(sampling_pct)),
                ("sampling_period", Json::from(DEFAULT_PERIOD)),
                ("server_ns_per_run", Json::from(with_server)),
                ("server_overhead_pct", Json::from(server_pct)),
                ("server_scrapes", Json::from(scrapes)),
                ("timed_runs_observed", Json::from(runs)),
                ("steps_per_run", Json::from(steps_per_run)),
            ]),
        );
    }

    let doc = Json::obj([
        ("harness", Json::from("telemetry_overhead")),
        ("iters_per_sample", Json::from(iters as u64)),
        ("samples", Json::from(SAMPLES as u64)),
        ("benchmarks", Json::Obj(rows)),
    ]);
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/BENCH_telemetry_overhead.json";
    std::fs::write(path, doc.encode() + "\n").expect("write metrics file");
    println!("\nwrote {path}");
}
