//! Measures how fast the incremental diagnosis converges — the
//! observatory's "witnesses-to-stable-top-1" benchmark — and writes
//! `results/BENCH_convergence.json` plus one
//! `results/CONVERGENCE_<id>.json` curve artifact per benchmark.
//!
//! For one sequential benchmark (sort, LBRA) and one concurrency
//! benchmark (apache4, LCRA Conf2) the harness runs the same witness
//! sets twice: once to full quota under `StabilityPolicy::never()`
//! (monitor-only), once under the default early-stop policy. It then
//! re-streams the full-quota witness profiles through the public
//! [`IncrementalRanking`] / [`ConvergenceTracker`] API to chart the
//! rank of the ground-truth root cause after every ingested witness and
//! to find the exact witness count at which the default policy fires.
//!
//! Gated metrics (all deterministic — the simulation is fully seeded —
//! and all "higher is worse" for `bench_diff`):
//!
//! * `witnesses_full` / `witnesses_early` — witnesses ingested by the
//!   full-quota and early-stopped sessions; early-stop regressing
//!   toward the quota fails CI.
//! * `witnesses_to_stable_top1` — first witness count satisfying the
//!   default policy on the full stream (`null` = never stabilised).
//! * `top1_mismatch` — 0 when the early-stopped session's top-1 equals
//!   the full-quota top-1, 1 otherwise (the acceptance invariant).
//! * `rank_full` / `rank_early` — 1-based rank of the root cause in
//!   each session's final (batch-identical) ranking.

use std::collections::BTreeSet;

use stm_bench::{json_rank, mark, MetricsEmitter};
use stm_core::converge::{ConvergenceTracker, FinalRanking, IncrementalRanking, StabilityPolicy};
use stm_core::diagnose::{failure_profile, success_profile};
use stm_core::engine::{CollectedProfiles, DiagnosisSession, ProfileKind};
use stm_core::profile::{lbr_events, lcr_events, BranchOutcome, CoherenceEvent};
use stm_core::ranking::RankingModel;
use stm_core::runner::{FailureSpec, Runner};
use stm_machine::report::ProfileData;
use stm_suite::eval::{default_threads, expand_workloads, lbra_runner, lcra_runner};
use stm_suite::Benchmark;
use stm_telemetry::json::Json;

fn main() {
    let mut metrics = MetricsEmitter::new("convergence");
    println!("Diagnosis convergence (witnesses to a stable top-1; lower is better)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "bench", "full", "early", "stable@", "rank_full", "rank_early", "top1_ok"
    );

    for (id, lbr) in [("sort", true), ("apache4", false)] {
        let b = stm_suite::by_id(id).expect("benchmark exists");
        let runner = if lbr {
            lbra_runner(&b)
        } else {
            lcra_runner(&b)
        };
        let (failing, passing) = expand_workloads(&b, &runner);

        let run = |policy: StabilityPolicy| -> CollectedProfiles {
            DiagnosisSession::from_runner(&runner)
                .failure(b.truth.spec.clone())
                .failing(failing.clone())
                .passing(passing.clone())
                .profile_kind(if lbr {
                    ProfileKind::Lbr
                } else {
                    ProfileKind::Lcr
                })
                .threads(default_threads())
                .converge(policy)
                .collect()
                .expect("witness-mode collection cannot fail")
        };
        let full = run(StabilityPolicy::never());
        let early = run(StabilityPolicy::default());
        let full_report = full.convergence().expect("monitored session reports");
        let early_report = early.convergence().expect("monitored session reports");

        let (curve, stable_at) = if lbr {
            let target = b.truth.target_branch().expect("sequential target");
            replay(&b, &runner, &full, false, |e: &BranchOutcome| {
                e.branch == target
            })
        } else {
            let fpe = b.truth.fpe.expect("concurrency FPE");
            let state = fpe.conf2_state.expect("Conf2 state");
            replay(&b, &runner, &full, true, |e: &CoherenceEvent| {
                e.loc == fpe.loc && e.state == state
            })
        };

        let witnesses_full = full_report.evidence.witnesses;
        let witnesses_early = early_report.evidence.witnesses;
        // The early session consumes a strict prefix of the full
        // session's job order, so the replayed stop point must agree
        // with where the live policy actually fired.
        if early_report.verdict == stm_core::converge::Verdict::ConvergedEarly {
            assert_eq!(
                stable_at,
                Some(witnesses_early),
                "{id}: replayed stop point diverged from the live session"
            );
        }
        let rank_full = rank_of_root_cause(&b, &full_report.final_ranking);
        let rank_early = rank_of_root_cause(&b, &early_report.final_ranking);
        let top1_mismatch = usize::from(full_report.evidence.top1 != early_report.evidence.top1);

        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
            id,
            witnesses_full,
            witnesses_early,
            mark(stable_at),
            mark(rank_full),
            mark(rank_early),
            if top1_mismatch == 0 { "yes" } else { "NO" },
        );

        metrics.checkpoint(
            id,
            vec![
                ("witnesses_full", Json::from(witnesses_full)),
                ("witnesses_early", Json::from(witnesses_early)),
                ("witnesses_to_stable_top1", json_rank(stable_at)),
                ("top1_mismatch", Json::from(top1_mismatch)),
                ("rank_full", json_rank(rank_full)),
                ("rank_early", json_rank(rank_early)),
            ],
        );

        let artifact = Json::obj([
            ("benchmark", Json::from(id)),
            ("mode", Json::from(if lbr { "lbra" } else { "lcra" })),
            ("verdict_full", Json::from(full_report.verdict.as_str())),
            ("verdict_early", Json::from(early_report.verdict.as_str())),
            ("witnesses_full", Json::from(witnesses_full)),
            ("witnesses_early", Json::from(witnesses_early)),
            ("witnesses_to_stable_top1", json_rank(stable_at)),
            ("policy", early_report.policy.to_json()),
            (
                "top1_full",
                full_report
                    .evidence
                    .top1
                    .clone()
                    .map_or(Json::Null, Json::from),
            ),
            (
                "top1_early",
                early_report
                    .evidence
                    .top1
                    .clone()
                    .map_or(Json::Null, Json::from),
            ),
            (
                "curve",
                Json::Arr(
                    curve
                        .iter()
                        .map(|(w, rank)| Json::Arr(vec![Json::from(*w), json_rank(*rank)]))
                        .collect(),
                ),
            ),
            (
                "history",
                Json::Arr(
                    full_report
                        .evidence
                        .history
                        .iter()
                        .map(|p| {
                            Json::Arr(vec![
                                Json::from(p.witness),
                                Json::from(p.churn),
                                Json::from(p.top1_streak),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        let path = format!("results/CONVERGENCE_{id}.json");
        match std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&path, artifact.encode() + "\n"))
        {
            Ok(()) => println!("wrote {path}"),
            Err(e) => stm_telemetry::log::warn(
                "bench",
                "artifact.write_failed",
                vec![("path", path), ("error", e.to_string())],
            ),
        }
    }

    match metrics.finish() {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
}

/// 1-based rank of the benchmark's ground-truth root cause in a
/// session's final (raw batch-model) ranking.
fn rank_of_root_cause(b: &Benchmark, ranking: &FinalRanking) -> Option<usize> {
    match ranking {
        FinalRanking::Lbr(r) => {
            let target = b.truth.target_branch().expect("sequential target");
            RankingModel::rank_of(r, |p| p.event.branch == target)
        }
        FinalRanking::Lcr(r) => {
            let fpe = b.truth.fpe.expect("concurrency FPE");
            let state = fpe.conf2_state.expect("Conf2 state");
            RankingModel::rank_of(r, |p| p.event.loc == fpe.loc && p.event.state == state)
        }
    }
}

/// Re-streams a full-quota session's witness profiles — in the engine's
/// consumption order (all failures, then all successes) — through the
/// public incremental API, charting the root cause's rank after every
/// witness and finding where the default policy would stop.
fn replay<E, F>(
    b: &Benchmark,
    runner: &Runner,
    profiles: &CollectedProfiles,
    absence: bool,
    is_target: F,
) -> (Vec<(usize, Option<usize>)>, Option<usize>)
where
    E: Ord + Clone + std::fmt::Display + WitnessEvents,
    F: Fn(&E) -> bool,
{
    let stream = witness_stream::<E>(b, runner, profiles);
    let mut inc = if absence {
        IncrementalRanking::with_absence()
    } else {
        IncrementalRanking::new()
    };
    let mut tracker = ConvergenceTracker::new(inc.clone(), StabilityPolicy::default());
    let mut curve = Vec::with_capacity(stream.len());
    let mut stable_at = None;
    for (i, (is_failure, witness, events)) in stream.into_iter().enumerate() {
        inc.ingest(is_failure, witness.clone(), events.clone());
        tracker.observe(is_failure, witness, events);
        let rank = inc
            .scores()
            .iter()
            .position(|p| is_target(&p.event))
            .map(|i| i + 1);
        curve.push((i + 1, rank));
        if stable_at.is_none() && tracker.should_stop() {
            stable_at = Some(i + 1);
        }
    }
    (curve, stable_at)
}

/// Extraction seam: how each ring kind decodes a profile snapshot into
/// the event set the ranking ingests.
trait WitnessEvents: Sized {
    fn events(runner: &Runner, data: &ProfileData) -> Option<BTreeSet<Self>>;
}

impl WitnessEvents for BranchOutcome {
    fn events(runner: &Runner, data: &ProfileData) -> Option<BTreeSet<Self>> {
        match data {
            ProfileData::Lbr(records) => Some(lbr_events(runner.machine().layout(), records)),
            ProfileData::Lcr(_) => None,
        }
    }
}

impl WitnessEvents for CoherenceEvent {
    fn events(runner: &Runner, data: &ProfileData) -> Option<BTreeSet<Self>> {
        match data {
            ProfileData::Lcr(records) => Some(lcr_events(runner.machine().layout(), records)),
            ProfileData::Lbr(_) => None,
        }
    }
}

/// The kept witness runs as `(is_failure, witness id, events)` in the
/// engine's deterministic consumption order.
fn witness_stream<E: WitnessEvents>(
    b: &Benchmark,
    runner: &Runner,
    profiles: &CollectedProfiles,
) -> Vec<(bool, String, BTreeSet<E>)> {
    let spec: &FailureSpec = &b.truth.spec;
    let mut out = Vec::new();
    for run in profiles.failure_runs() {
        if let Some(p) = failure_profile(&run.report, spec) {
            if let Some(events) = E::events(runner, &p.data) {
                out.push((true, run.witness.clone(), events));
            }
        }
    }
    for run in profiles.success_runs() {
        if let Some(p) = success_profile(&run.report, spec) {
            if let Some(events) = E::events(runner, &p.data) {
                out.push((false, run.witness.clone(), events));
            }
        }
    }
    out
}
