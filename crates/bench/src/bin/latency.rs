//! Experiment E5 — diagnosis latency (§7.2): LBRA reaches a useful
//! diagnosis from 10 failure occurrences, while sampling-based CBI needs
//! hundreds to thousands; at 500 failing runs the paper saw CBI fail for
//! 10 of 15 C programs.

use stm_bench::{cbi_rank, mark};
use stm_suite::eval::run_lbra;
use stm_suite::Language;

fn main() {
    let budgets = [10usize, 100, 500, 1000];
    println!("Diagnosis latency: rank of the root-cause branch vs. failing-run budget");
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "App.", "LBRA@10", "CBI@10", "CBI@100", "CBI@500", "CBI@1000"
    );
    let mut cbi_found = vec![0usize; budgets.len()];
    let mut c_programs = 0usize;
    for b in stm_suite::sequential() {
        if b.info.language == Language::Cpp {
            continue;
        }
        c_programs += 1;
        let lbra = run_lbra(&b);
        let target = b.truth.target_branch();
        let lbra_rank = target.and_then(|t| lbra.rank_of_branch(t));
        let mut cells = Vec::new();
        for (i, runs) in budgets.iter().enumerate() {
            let r = cbi_rank(&b, *runs, *runs);
            if r.is_some() {
                cbi_found[i] += 1;
            }
            cells.push(mark(r));
        }
        println!(
            "{:<10} {:>8} ({:>2}F) {:>10} {:>10} {:>10} {:>10}",
            b.info.id,
            mark(lbra_rank),
            lbra.stats.failure_runs_used,
            cells[0],
            cells[1],
            cells[2],
            cells[3],
        );
    }
    println!("\nCBI diagnoses found (of {c_programs} C programs):");
    for (i, runs) in budgets.iter().enumerate() {
        println!("  {runs:>5} failing runs: {}/{c_programs}", cbi_found[i]);
    }
    println!("\npaper: LBRA uses 10 failure runs; CBI@500 failed for 10 of 15 C programs.");
}
