//! Experiment E7 — LBR capacity sensitivity (§2.1, §7.1.2): LBR grew from
//! 4 entries (Pentium 4) to 8 (Pentium M) to 16 (Nehalem). Most root
//! causes sit in the top 8 entries, so even small LBRs are useful.

use stm_bench::mark;
use stm_suite::eval::lbrlog_position_with_entries;

fn main() {
    let sizes = [4usize, 8, 16, 32];
    println!("LBRLOG root-cause position vs. LBR capacity");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "App.", "4", "8", "16", "32"
    );
    let mut found = [0usize; 4];
    let mut total = 0usize;
    for b in stm_suite::sequential() {
        total += 1;
        let cells: Vec<String> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let p = lbrlog_position_with_entries(&b, *s);
                if p.is_some() {
                    found[i] += 1;
                }
                mark(p)
            })
            .collect();
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>8}",
            b.info.id, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!("\ncaptured with k entries (of {total}):");
    for (i, s) in sizes.iter().enumerate() {
        println!("  {s:>2} entries: {}/{total}", found[i]);
    }
    println!("\npaper: most root-cause branches are located within the top 8 LBR entries.");
}
