//! Emits the forensic artifacts for suite benchmarks: a failure-dossier +
//! ranking-evidence report per benchmark, as strict JSON
//! (`results/REPORT_<id>.json`) and markdown (`results/REPORT_<id>.md`).
//!
//! Sequential benchmarks run through LBRA, concurrency benchmarks through
//! LCRA — the same reactive deployments the Table 6/7 harnesses use.
//!
//! Usage: `diagnose_report [--top K] [--telemetry] [--trace-out FILE]
//! [benchmark ids...]` (defaults: top 5, benchmarks `sort` and
//! `apache4`). The shared observability flags enable span/metric
//! collection and export a Chrome trace of the whole emission.

use stm_core::diagnose::failure_profile;
use stm_core::engine::{CollectedProfiles, DiagnosisSession, ProfileKind};
use stm_core::profile::{decode_lbr, decode_lcr, DecodedLbrEntry, DecodedLcrEntry};
use stm_core::runner::Runner;
use stm_core::transform::instrument;
use stm_forensics::{CausalChain, FailureDossier, ForensicReport, RankingReport};
use stm_machine::events::LcrConfig;
use stm_machine::interp::Machine;
use stm_machine::report::ProfileData;
use stm_suite::eval::{default_threads, expand_workloads, reactive_options};
use stm_suite::{Benchmark, BugClass};
use stm_telemetry::json::Json;

/// Builds the forensic report for one benchmark, or says why it cannot.
fn report_for(b: &Benchmark, top_k: usize) -> Result<ForensicReport, String> {
    let (runner, kind) = match b.info.bug_class {
        BugClass::Sequential => {
            let opts = reactive_options(b, true, None);
            (
                Runner::new(Machine::new(instrument(&b.program, &opts))),
                ProfileKind::Lbr,
            )
        }
        BugClass::Concurrency => {
            let opts = reactive_options(b, false, Some(LcrConfig::SPACE_CONSUMING));
            (
                Runner::new(Machine::new(instrument(&b.program, &opts))),
                ProfileKind::Lcr,
            )
        }
    };
    let (failing, passing) = expand_workloads(b, &runner);
    if failing.is_empty() {
        return Err("no failing workload reproduces the target failure".into());
    }
    let profiles = DiagnosisSession::from_runner(&runner)
        .failure(b.truth.spec.clone())
        .failing(failing)
        .passing(passing)
        .profile_kind(kind)
        .threads(default_threads())
        .collect()
        .map_err(|e| e.to_string())?;
    let program = runner.machine().program();
    let (ranking, chain) = match kind {
        ProfileKind::Lbr => {
            let mut d = profiles.lbra();
            d.exclude_site_guards(program, &b.truth.spec);
            let traces = lbr_traces(&profiles, &b.truth.spec);
            let chain = CausalChain::from_lbra(
                Some(program),
                &d.ranked,
                &traces,
                d.stats.failure_runs_used,
                d.stats.success_runs_used,
            );
            (
                RankingReport::from_lbra(program, b.info.id, &d, top_k),
                chain,
            )
        }
        ProfileKind::Lcr => {
            let d = profiles.lcra();
            let traces = lcr_traces(&profiles, &b.truth.spec);
            let chain = CausalChain::from_lcra(
                Some(program),
                &d.ranked,
                &traces,
                d.stats.failure_runs_used,
                d.stats.success_runs_used,
            );
            (
                RankingReport::from_lcra(program, b.info.id, &d, top_k),
                chain,
            )
        }
    };
    // Flight-record the first collected failure witness — the run is
    // already in the profile set, no replay needed.
    let dossier = profiles
        .failure_runs()
        .iter()
        .find_map(|run| {
            FailureDossier::collect(&runner, &run.report, &run.workload, Some(&b.truth.spec))
        })
        .ok_or("no run yielded a failure-site profile")?;
    let chain = chain.map(|c| c.with_symptom(dossier.symptom.clone()));
    Ok(ForensicReport {
        dossier,
        ranking,
        chain,
    })
}

/// Decodes every failing witness's LBR failure-site snapshot.
fn lbr_traces(
    profiles: &CollectedProfiles,
    spec: &stm_core::runner::FailureSpec,
) -> Vec<(String, Vec<DecodedLbrEntry>)> {
    let layout = profiles.runner().machine().layout();
    profiles
        .failure_runs()
        .iter()
        .filter_map(|run| {
            let p = failure_profile(&run.report, spec)?;
            match &p.data {
                ProfileData::Lbr(records) => {
                    Some((run.witness.clone(), decode_lbr(layout, records)))
                }
                ProfileData::Lcr(_) => None,
            }
        })
        .collect()
}

/// Decodes every failing witness's LCR failure-site snapshot.
fn lcr_traces(
    profiles: &CollectedProfiles,
    spec: &stm_core::runner::FailureSpec,
) -> Vec<(String, Vec<DecodedLcrEntry>)> {
    let layout = profiles.runner().machine().layout();
    profiles
        .failure_runs()
        .iter()
        .filter_map(|run| {
            let p = failure_profile(&run.report, spec)?;
            match &p.data {
                ProfileData::Lcr(records) => {
                    Some((run.witness.clone(), decode_lcr(layout, records)))
                }
                ProfileData::Lbr(_) => None,
            }
        })
        .collect()
}

fn main() {
    let (tele, rest) = stm_bench::TelemetryCli::from_env();
    let _metrics = tele.apply();
    let mut top_k = 5usize;
    let mut ids: Vec<String> = Vec::new();
    let mut args = rest.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            "--top" => {
                top_k = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--top needs a number");
                    std::process::exit(2);
                });
            }
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() {
        // One sequential (LBRA) and one concurrency (LCRA) benchmark.
        ids = vec!["sort".to_string(), "apache4".to_string()];
    }

    let mut failed = false;
    for id in &ids {
        let Some(b) = stm_suite::by_id(id) else {
            eprintln!("{id}: unknown benchmark");
            failed = true;
            continue;
        };
        match report_for(&b, top_k) {
            Ok(report) => {
                let json = report.to_json();
                let encoded = json.encode();
                // The artifact must round-trip through the strict parser.
                match Json::parse(&encoded) {
                    Ok(back) if back == json => {}
                    Ok(_) => {
                        eprintln!("{id}: JSON round-trip altered the document");
                        failed = true;
                        continue;
                    }
                    Err(e) => {
                        eprintln!("{id}: emitted JSON does not re-parse: {e}");
                        failed = true;
                        continue;
                    }
                }
                if let Err(e) = std::fs::create_dir_all("results") {
                    eprintln!("cannot create results/: {e}");
                    std::process::exit(2);
                }
                let json_path = format!("results/REPORT_{id}.json");
                let md_path = format!("results/REPORT_{id}.md");
                let io = std::fs::write(&json_path, encoded + "\n")
                    .and_then(|_| std::fs::write(&md_path, report.to_markdown()));
                match io {
                    Ok(()) => println!("wrote {json_path} and {md_path}"),
                    Err(e) => {
                        eprintln!("{id}: write failed: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("{id}: {e}");
                failed = true;
            }
        }
    }
    if let Err(e) = tele.finish() {
        stm_telemetry::log::warn("bench", "trace.write_failed", vec![("error", e)]);
    }
    if failed {
        std::process::exit(1);
    }
}
