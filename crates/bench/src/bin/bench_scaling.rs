//! Measures the parallel collection engine's throughput at 1/2/4/8
//! threads on one sequential (sort, LBR) and one concurrency (apache4,
//! LCR) benchmark, and writes `results/BENCH_scaling.json`.
//!
//! Each measurement is a scan-mode [`DiagnosisSession`] over a fixed
//! seed range with quotas that never fill, so every thread count
//! executes exactly the same set of runs and `runs/sec` is comparable
//! across thread counts.
//!
//! The emitted file carries two kinds of numbers:
//!
//! * informational throughput (`runs_per_sec_t{1,2,4,8}`,
//!   `speedup_t{2,4,8}_x1000`, `available_parallelism`, and the
//!   top-level `runs_per_sec` headline — the best throughput any case
//!   reached) — these are machine-dependent and deliberately kept out
//!   of the committed baseline, so `bench_diff` never gates on the
//!   exact speed of the box;
//! * scale-free ratio gates where **higher is worse**:
//!   `inv_speedup_t4_x1000` (time at 4 threads relative to 1 thread,
//!   ×1000 — parallel overhead must not blow up) and
//!   `seq_cost_vs_raw_x1000` (engine at 1 thread relative to a bare
//!   `Runner::run_classified` loop, ×1000 — the session machinery must
//!   stay close to free);
//! * floor gates (`*_floor`, **lower is worse** under `bench_diff`'s
//!   name-suffix convention): per-case `speedup_t4_x1000_floor` — on a
//!   multi-core runner four collection threads must actually beat one —
//!   and the top-level `runs_per_sec_floor`, a deliberately conservative
//!   absolute throughput floor that catches order-of-magnitude collapses
//!   of the interpreter/engine hot path (the headline `runs_per_sec`
//!   stays informational next to it).
//!
//! CI compares against `baselines/BENCH_scaling.json` with
//! `bench_diff --tol-pct 25`. The speedup floor assumes a multi-core
//! runner: on a single hardware thread the 4-thread sweep timeshares one
//! core and lands around 0.7–0.9× of sequential, below any honest floor.

use std::time::Instant;

use stm_bench::MetricsEmitter;
use stm_core::engine::DiagnosisSession;
use stm_core::runner::Runner;
use stm_core::transform::instrument;
use stm_machine::events::LcrConfig;
use stm_machine::interp::Machine;
use stm_profiler::CriticalPathReport;
use stm_suite::eval::reactive_options;
use stm_telemetry::json::Json;

/// Thread counts swept per benchmark.
const THREADS: [usize; 4] = [1, 2, 4, 8];
/// Timing repetitions per configuration; the fastest is kept.
const REPS: usize = 3;

struct Case {
    id: &'static str,
    lbr: bool,
    /// Scan seeds per measurement — sized so one sweep stays under a
    /// few seconds even on a single core.
    runs: u64,
}

const CASES: [Case; 2] = [
    Case {
        id: "sort",
        lbr: true,
        runs: 400,
    },
    Case {
        id: "apache4",
        lbr: false,
        runs: 400,
    },
];

/// Runs one scan sweep and returns the wall-clock seconds it took.
/// Quotas are set above the job count so no early stop ever triggers:
/// the engine executes all `runs` jobs at every thread count.
fn timed_sweep(runner: &Runner, b: &stm_suite::Benchmark, runs: u64, threads: usize) -> f64 {
    let base = b.workloads.failing[0].clone();
    let start = Instant::now();
    let profiles = DiagnosisSession::from_runner(runner)
        .failure(b.truth.spec.clone())
        .workloads(vec![base])
        .seeds(0..runs)
        .failure_profiles(usize::MAX)
        .success_profiles(usize::MAX)
        .threads(threads)
        .collect()
        .expect("scan collection cannot fail");
    let secs = start.elapsed().as_secs_f64();
    assert_eq!(
        profiles.stats().total_runs,
        runs as usize,
        "sweep must execute every job"
    );
    secs
}

/// The engine-free reference: the same runs through a bare
/// `run_classified` loop, without sessions, channels, or merging.
fn timed_raw(runner: &Runner, b: &stm_suite::Benchmark, runs: u64) -> f64 {
    let base = b.workloads.failing[0].clone();
    let start = Instant::now();
    let mut failures = 0usize;
    for seed in 0..runs {
        let w = base.clone().with_seed(seed);
        let (_, class) = runner.run_classified(&w, &b.truth.spec);
        if class == stm_core::runner::RunClass::TargetFailure {
            failures += 1;
        }
    }
    std::hint::black_box(failures);
    start.elapsed().as_secs_f64()
}

fn best_of<F: FnMut() -> f64>(mut f: F) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut metrics = MetricsEmitter::new("scaling");
    // Headline throughput: the best runs/sec any case reached at any
    // thread count on this box. Informational (machine-dependent) — it
    // goes in the document top level, outside the gated `benchmarks`.
    let mut headline = 0.0f64;
    println!("Collection-engine scaling (available_parallelism = {cores})");
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "bench", "runs", "t1 runs/s", "t2 runs/s", "t4 runs/s", "t8 runs/s", "raw/s"
    );

    for case in &CASES {
        let b = stm_suite::by_id(case.id).expect("benchmark exists");
        let opts = if case.lbr {
            reactive_options(&b, true, None)
        } else {
            reactive_options(&b, false, Some(LcrConfig::SPACE_CONSUMING))
        };
        let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));

        // Warm up allocators and page in the program before timing.
        timed_sweep(&runner, &b, case.runs.min(50), 1);

        let raw = best_of(|| timed_raw(&runner, &b, case.runs));
        let mut secs = [0.0f64; THREADS.len()];
        let mut paths = Vec::new();
        for (i, &t) in THREADS.iter().enumerate() {
            // Telemetry is already on (the emitter enabled it), so the
            // sweeps leave full span DAGs behind; start each thread count
            // from a drained buffer and attribute its last session.
            let _ = stm_telemetry::take_spans();
            secs[i] = best_of(|| timed_sweep(&runner, &b, case.runs, t));
            let report = CriticalPathReport::analyze(&stm_telemetry::take_spans());
            paths.push((t, report));
        }
        let rps = |s: f64| case.runs as f64 / s;
        headline = secs.iter().fold(headline, |h, &s| h.max(rps(s)));

        println!(
            "{:<10} {:>6} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>10.0}",
            case.id,
            case.runs,
            rps(secs[0]),
            rps(secs[1]),
            rps(secs[2]),
            rps(secs[3]),
            rps(raw),
        );
        // Informational: where the session wall-clock went at each thread
        // count (machine-dependent, never gated).
        for (t, report) in &paths {
            match report {
                Some(c) => {
                    let phases = c.by_label();
                    let us = |label: &str| phases.get(label).copied().unwrap_or(0);
                    println!(
                        "  t{t}: wall {} us | job execution {} | queue wait {} | hold-back {} | consume {} | efficiency {:.1}%",
                        c.wall_us,
                        us("job execution"),
                        us("queue wait"),
                        us("result hold-back"),
                        us("ordered consumption"),
                        c.parallel_efficiency_pct,
                    );
                }
                None => println!("  t{t}: no completed session span"),
            }
        }

        let x1000 = |ratio: f64| Json::from((ratio * 1000.0).round());
        metrics.checkpoint(
            case.id,
            vec![
                // Gate metrics: scale-free, higher-is-worse.
                ("inv_speedup_t4_x1000", x1000(secs[2] / secs[0])),
                ("seq_cost_vs_raw_x1000", x1000(secs[0] / raw)),
                // Floor gate: lower-is-worse (the `_floor` suffix flips
                // the comparison in `bench_diff`).
                ("speedup_t4_x1000_floor", x1000(secs[0] / secs[2])),
                // Informational: machine-dependent, not in the baseline.
                ("runs", Json::from(case.runs)),
                ("runs_per_sec_t1", Json::from(rps(secs[0]).round())),
                ("runs_per_sec_t2", Json::from(rps(secs[1]).round())),
                ("runs_per_sec_t4", Json::from(rps(secs[2]).round())),
                ("runs_per_sec_t8", Json::from(rps(secs[3]).round())),
                ("speedup_t2_x1000", x1000(secs[0] / secs[1])),
                ("speedup_t4_x1000", x1000(secs[0] / secs[2])),
                ("speedup_t8_x1000", x1000(secs[0] / secs[3])),
                ("available_parallelism", Json::from(cores as u64)),
            ],
        );
    }

    println!("\nheadline runs/sec (best case × thread count): {headline:.0}");
    metrics.top_level("runs_per_sec", Json::from(headline.round()));
    // The gated twin: same number under the lower-is-worse suffix, so the
    // committed baseline can hold a conservative absolute floor without
    // ever gating on how fast the box happens to be today.
    metrics.top_level("runs_per_sec_floor", Json::from(headline.round()));
    match metrics.finish() {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
}
