//! Regenerates Table 6: LBRLOG/LBRA/CBI results and patch distances for
//! the 20 sequential-bug failures. Pass `--timed` to also measure the
//! overhead columns (slower), and `--cbi-runs N` to change the CBI run
//! budget (default 1000, the paper's setting). Also writes
//! `results/BENCH_table6.json` with per-benchmark ranks and run volumes.

use stm_bench::{cbi_rank, dist, json_rank, mark, measure_overheads, MetricsEmitter, TelemetryCli};
use stm_suite::eval::evaluate_sequential;
use stm_telemetry::json::Json;

fn main() {
    let (tele, args) = TelemetryCli::from_env();
    let _metrics = tele.apply();
    let timed = args.iter().any(|a| a == "--timed");
    let cbi_runs = args
        .iter()
        .position(|a| a == "--cbi-runs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000usize);

    let mut metrics = MetricsEmitter::new("table6");
    println!("Table 6: Results of LBRLOG and LBRA (paper values in parentheses)");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "App.", "LBRLOG w/tog", "LBRLOG w/o", "LBRA", "CBI", "dist(fail)", "dist(LBR)"
    );
    for b in stm_suite::sequential() {
        let row = evaluate_sequential(&b);
        let cbi = cbi_rank(&b, cbi_runs, cbi_runs);
        let p = &b.info.paper;
        println!(
            "{:<10} {:>7}{:>5} {:>7}{:>5} {:>5}{:>5} {:>5}{:>5} {:>6}{:>4} {:>5}{:>4}",
            row.id,
            mark(row.lbrlog_tog),
            format!(
                "({})",
                p.lbrlog_tog.map(|m| m.to_string()).unwrap_or_default()
            ),
            mark(row.lbrlog_no_tog),
            format!(
                "({})",
                p.lbrlog_no_tog.map(|m| m.to_string()).unwrap_or_default()
            ),
            mark(row.lbra),
            format!("({})", p.lbra.map(|m| m.to_string()).unwrap_or_default()),
            mark(cbi),
            format!(
                "({})",
                p.cbi.map(|m| m.to_string()).unwrap_or_else(|| "N/A".into())
            ),
            dist(row.dist_failure),
            format!(
                "({})",
                p.patch_dist_failure
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "inf".into())
            ),
            dist(row.dist_lbr),
            format!(
                "({})",
                p.patch_dist_lbr
                    .map(|d| d.to_string())
                    .unwrap_or_else(|| "inf".into())
            ),
        );
        metrics.checkpoint(
            b.info.id,
            vec![
                ("lbrlog_tog", json_rank(row.lbrlog_tog)),
                ("lbrlog_no_tog", json_rank(row.lbrlog_no_tog)),
                ("lbra", json_rank(row.lbra)),
                ("cbi", json_rank(cbi)),
                (
                    "dist_failure",
                    json_rank(row.dist_failure.map(|d| d as usize)),
                ),
                ("dist_lbr", json_rank(row.dist_lbr.map(|d| d as usize))),
            ],
        );
    }

    if timed {
        println!("\nOverheads (% over uninstrumented; paper: LBRLOG<3%, LBRA reactive<3%,");
        println!("LBRA proactive 2.1-6.3%, CBI avg 15.2%):");
        println!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "App.", "LOG w/tog", "LOG w/o", "LBRA-re", "LBRA-pro", "CBI"
        );
        for b in stm_suite::sequential() {
            let o = measure_overheads(&b, 60);
            println!(
                "{:<10} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}% {:>10}",
                b.info.id,
                o.lbrlog_tog,
                o.lbrlog_no_tog,
                o.lbra_reactive,
                o.lbra_proactive,
                o.cbi
                    .map(|c| format!("{c:.2}%"))
                    .unwrap_or_else(|| "N/A".into()),
            );
            metrics.checkpoint(
                b.info.id,
                vec![
                    ("overhead_lbrlog_tog_pct", Json::from(o.lbrlog_tog)),
                    ("overhead_lbrlog_no_tog_pct", Json::from(o.lbrlog_no_tog)),
                    ("overhead_lbra_reactive_pct", Json::from(o.lbra_reactive)),
                    ("overhead_lbra_proactive_pct", Json::from(o.lbra_proactive)),
                    (
                        "overhead_cbi_pct",
                        o.cbi.map(Json::from).unwrap_or(Json::Null),
                    ),
                ],
            );
        }
    }
    match metrics.finish() {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
    if let Err(e) = tele.finish() {
        stm_telemetry::log::warn("bench", "trace.write_failed", vec![("error", e)]);
    }
}
