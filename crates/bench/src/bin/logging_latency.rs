//! Experiment E6 — logging latency (§5.3): logging LBR/LCR takes <20 µs;
//! recording a call stack ≈200 µs; dumping core >200 ms. The cost driver
//! is the byte volume each scheme must serialize at the failure site.

use std::time::Instant;
use stm_core::logging::LogPayload;

fn time_payload(p: LogPayload, iters: u32) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        let buf = p.materialize();
        std::hint::black_box(&buf);
    }
    start.elapsed().as_secs_f64() / iters as f64 * 1e6 // µs per log
}

fn main() {
    let schemes = [
        (
            "LBR/LCR (16 entries)",
            LogPayload::ShortTermMemory { entries: 16 },
            10_000,
        ),
        (
            "call stack (40 frames)",
            LogPayload::CallStack { frames: 40 },
            10_000,
        ),
        (
            "coredump (64 MiB image)",
            LogPayload::Coredump {
                bytes: 64 * 1024 * 1024,
            },
            5,
        ),
    ];
    println!("Logging latency per failure (measured on this machine):");
    println!("{:<26} {:>12} {:>14}", "scheme", "bytes", "latency");
    let mut measured = Vec::new();
    for (name, payload, iters) in schemes {
        let us = time_payload(payload, iters);
        measured.push(us);
        let latency = if us >= 1000.0 {
            format!("{:.1} ms", us / 1000.0)
        } else {
            format!("{us:.2} us")
        };
        println!("{:<26} {:>12} {:>14}", name, payload.byte_volume(), latency);
    }
    assert!(measured[0] < measured[1] && measured[1] < measured[2]);
    println!("\npaper: LBR/LCR < 20 us;  call stack ~ 200 us;  coredump > 200 ms");
}
