//! Sweeps diagnosis quality against degraded hardware signals — the
//! paper's §7 sensitivity analysis (4/8/16-entry LBR capacities, row 1 of
//! PAPER.md's substitutions table), generalized with the fault-injection
//! layer (`stm_hardware::perturb`) — and writes
//! `results/BENCH_sensitivity.json`.
//!
//! Grid: effective ring size (truncation at read time to 16/8/4/1
//! records) × random per-record drop rate (0%/25%/50%/100%) on one
//! sequential benchmark (sort, LBRA, rank of the root-cause branch) and
//! one concurrency benchmark (apache4, LCRA Conf2, rank of the
//! failure-predicting event).
//!
//! Witness workloads are expanded **once** per benchmark at full signal
//! and reused across every grid cell: perturbations degrade only the
//! snapshots the driver reads back, never execution or classification, so
//! the sweep isolates signal degradation from workload luck.
//!
//! Every metric is a 1-based rank where **higher is worse** and `null`
//! means the root cause was not ranked at all (total signal loss) —
//! exactly what `bench_diff` gates: a rank drifting up, or a previously
//! present rank disappearing, fails CI against
//! `baselines/BENCH_sensitivity.json`. The simulation is fully seeded, so
//! these ranks are machine-independent.

use stm_bench::{json_rank, mark, MetricsEmitter};
use stm_hardware::{HwConfig, PerturbConfig};
use stm_suite::eval::{
    expand_workloads, lbra_runner, lcra_runner, run_lbra_with_hw, run_lcra_with_hw,
};

/// Effective ring sizes swept (records kept per snapshot, newest first).
/// 16 = the full Nehalem-sized signal; 8 ≈ Pentium M; 4 ≈ Pentium 4; 1 =
/// a single surviving record.
const RING_SIZES: [usize; 4] = [16, 8, 4, 1];

/// Per-record drop rates swept, in percent.
const DROP_PCTS: [u32; 4] = [0, 25, 50, 100];

/// The grid cell's hardware: default geometry, snapshots truncated to
/// `ring` records and thinned by `drop_pct` at read time.
fn perturbed_hw(lbr: bool, ring: usize, drop_pct: u32) -> HwConfig {
    let base = PerturbConfig::NONE.drop_rate(drop_pct as f64 / 100.0);
    let perturb = if lbr {
        base.truncate_lbr(ring)
    } else {
        base.truncate_lcr(ring)
    };
    HwConfig {
        perturb,
        ..HwConfig::default()
    }
}

/// Leaks a formatted metric name; checkpoint extras want `&'static str`
/// and the grid is small and swept once per process.
fn metric_name(ring: usize, drop_pct: u32) -> &'static str {
    Box::leak(format!("rank_r{ring}_d{drop_pct}").into_boxed_str())
}

fn main() {
    let mut metrics = MetricsEmitter::new("sensitivity");
    println!("Diagnosis rank under degraded signals (lower is better, - = lost)");
    println!(
        "{:<10} {:<6} {:>8} {:>8} {:>8} {:>8}",
        "bench", "ring", "d0", "d25", "d50", "d100"
    );

    for (id, lbr) in [("sort", true), ("apache4", false)] {
        let b = stm_suite::by_id(id).expect("benchmark exists");
        let runner = if lbr {
            lbra_runner(&b)
        } else {
            lcra_runner(&b)
        };
        let (failing, passing) = expand_workloads(&b, &runner);

        let rank_with = |hw: HwConfig| -> Option<usize> {
            if lbr {
                let target = b.truth.target_branch().expect("sequential target");
                run_lbra_with_hw(&b, &runner, hw, failing.clone(), passing.clone())
                    .expect("witness-mode collection cannot fail")
                    .rank_of_branch(target)
            } else {
                let fpe = b.truth.fpe.expect("concurrency FPE");
                let state = fpe.conf2_state.expect("Conf2 state");
                run_lcra_with_hw(&b, &runner, hw, failing.clone(), passing.clone())
                    .expect("witness-mode collection cannot fail")
                    .rank_of_event(fpe.loc, state)
            }
        };

        let full = rank_with(HwConfig::default());
        let mut extras = vec![("rank_full", json_rank(full))];
        for ring in RING_SIZES {
            let mut row = Vec::with_capacity(DROP_PCTS.len());
            for drop_pct in DROP_PCTS {
                let rank = rank_with(perturbed_hw(lbr, ring, drop_pct));
                if ring == 16 && drop_pct == 0 {
                    // The full-signal grid corner must reproduce today's
                    // unperturbed diagnosis exactly.
                    assert_eq!(
                        rank, full,
                        "{id}: full-signal cell diverged from the unperturbed rank"
                    );
                }
                extras.push((metric_name(ring, drop_pct), json_rank(rank)));
                row.push(rank);
            }
            println!(
                "{:<10} {:<6} {:>8} {:>8} {:>8} {:>8}",
                id,
                ring,
                mark(row[0]),
                mark(row[1]),
                mark(row[2]),
                mark(row[3]),
            );
        }
        metrics.checkpoint(id, extras);
    }

    match metrics.finish() {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
}
