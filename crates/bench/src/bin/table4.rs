//! Regenerates Table 4: features of the real-world failures evaluated.
//!
//! Paper columns (KLOC, log points) describe the original applications;
//! the "model" columns describe our IR reproductions. Also writes
//! `results/BENCH_table4.json` with the per-benchmark model sizes.

use stm_bench::{MetricsEmitter, TelemetryCli};
use stm_telemetry::json::Json;

fn main() {
    let (tele, _) = TelemetryCli::from_env();
    let _metrics = tele.apply();
    let mut metrics = MetricsEmitter::new("table4");
    println!("Table 4: Features of real-world failures evaluated");
    println!(
        "{:<12} {:>8} {:>10} {:>14} {:>8} {:>10} {:>11} {:>11}",
        "Program",
        "Version",
        "KLOC(pap)",
        "RootCause",
        "Symptom",
        "LogPts(pap)",
        "LogPts(our)",
        "Stmts(our)"
    );
    for b in stm_suite::all() {
        println!(
            "{:<12} {:>8} {:>10} {:>14} {:>8} {:>10} {:>11} {:>11}",
            b.info.id,
            b.info.version,
            b.info.paper.kloc,
            b.info.root_cause.short(),
            b.info.symptom.describe(),
            b.info.paper.log_points,
            b.log_points(),
            b.program.stmt_count(),
        );
        metrics.checkpoint(
            b.info.id,
            vec![
                ("log_points", Json::from(b.log_points() as u64)),
                ("stmts", Json::from(b.program.stmt_count() as u64)),
            ],
        );
    }
    match metrics.finish() {
        Ok(path) => println!("\nwrote {path}"),
        Err(e) => stm_telemetry::log::warn(
            "bench",
            "metrics.write_failed",
            vec![("error", e.to_string())],
        ),
    }
    if let Err(e) = tele.finish() {
        stm_telemetry::log::warn("bench", "trace.write_failed", vec![("error", e)]);
    }
}
