//! Runs one suite benchmark's full diagnosis under telemetry and exports
//! a Chrome `trace_event` JSON — load it at chrome://tracing or
//! https://ui.perfetto.dev to see the interpreter runs, ring snapshots,
//! diagnosis phases and per-job flow arrows on a timeline.
//!
//! Usage: `trace_run <benchmark-id> [--trace-out FILE] [--threads N]`
//! (default output: `results/TRACE_<id>.json`; `--out` is accepted as an
//! alias for `--trace-out`; default threads: the `STM_THREADS` env var,
//! else available parallelism capped at 8). Telemetry is always on here —
//! exporting the trace is this binary's whole job — so the shared
//! `--telemetry` flag is accepted but redundant.

use stm_bench::TelemetryCli;
use stm_suite::BugClass;

fn main() {
    let (mut tele, rest) = TelemetryCli::from_env();
    let mut id: Option<String> = None;
    let mut args = rest.into_iter();
    while let Some(a) = args.next() {
        match a.as_str() {
            // Historical alias for the shared --trace-out flag.
            "--out" => match args.next() {
                Some(path) => tele.trace_out = Some(path),
                None => {
                    eprintln!("--out needs a file path");
                    std::process::exit(2);
                }
            },
            "--threads" => {
                let Some(threads) = args.next().filter(|t| t.parse::<usize>().is_ok()) else {
                    eprintln!("--threads needs a number");
                    std::process::exit(2);
                };
                // The eval drivers read STM_THREADS for their collection
                // engine.
                std::env::set_var("STM_THREADS", threads);
            }
            other if !other.starts_with("--") && id.is_none() => id = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(id) = id else {
        eprintln!("usage: trace_run <benchmark-id> [--trace-out FILE] [--threads N]");
        eprintln!("benchmarks:");
        for b in stm_suite::all() {
            eprintln!("  {:<12} ({:?})", b.info.id, b.info.bug_class);
        }
        std::process::exit(2);
    };
    let Some(b) = stm_suite::by_id(&id) else {
        eprintln!("unknown benchmark {id:?}; run with no arguments for the list");
        std::process::exit(2);
    };

    tele.enabled = true;
    if tele.trace_out.is_none() {
        tele.trace_out = Some(format!("results/TRACE_{id}.json"));
    }
    let _metrics = tele.apply();
    {
        let _run = stm_telemetry::span_cat("trace_run", "harness");
        match b.info.bug_class {
            BugClass::Sequential => {
                let d = stm_suite::eval::run_lbra(&b);
                println!(
                    "{id}: LBRA used {} failing + {} successful of {} runs, {} predictors",
                    d.stats.failure_runs_used,
                    d.stats.success_runs_used,
                    d.stats.total_runs,
                    d.ranked.len()
                );
            }
            BugClass::Concurrency => {
                let d = stm_suite::eval::run_lcra(&b);
                println!(
                    "{id}: LCRA used {} failing + {} successful of {} runs, {} predictors",
                    d.stats.failure_runs_used,
                    d.stats.success_runs_used,
                    d.stats.total_runs,
                    d.ranked.len()
                );
            }
        }
    }

    if let Err(e) = tele.finish() {
        eprintln!("internal error: {e}");
        std::process::exit(1);
    }

    println!();
    print!(
        "{}",
        stm_telemetry::export::summary(&stm_telemetry::metrics_snapshot())
    );
}
