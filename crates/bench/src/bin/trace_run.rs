//! Runs one suite benchmark's full diagnosis under telemetry and exports
//! a Chrome `trace_event` JSON — load it at chrome://tracing or
//! https://ui.perfetto.dev to see the interpreter runs, ring snapshots
//! and diagnosis phases on a timeline.
//!
//! Usage: `trace_run <benchmark-id> [--out FILE] [--threads N]`
//! (default output: `results/TRACE_<id>.json`; default threads: the
//! `STM_THREADS` env var, else available parallelism capped at 8)

use stm_suite::BugClass;
use stm_telemetry::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let Some(id) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: trace_run <benchmark-id> [--out FILE] [--threads N]");
        eprintln!("benchmarks:");
        for b in stm_suite::all() {
            eprintln!("  {:<12} ({:?})", b.info.id, b.info.bug_class);
        }
        std::process::exit(2);
    };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("results/TRACE_{id}.json"));
    if let Some(threads) = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
    {
        if threads.parse::<usize>().is_err() {
            eprintln!("--threads needs a number, got {threads:?}");
            std::process::exit(2);
        }
        // The eval drivers read STM_THREADS for their collection engine.
        std::env::set_var("STM_THREADS", threads);
    }

    let Some(b) = stm_suite::by_id(id) else {
        eprintln!("unknown benchmark {id:?}; run with no arguments for the list");
        std::process::exit(2);
    };

    stm_telemetry::set_enabled(true);
    {
        let _run = stm_telemetry::span_cat("trace_run", "harness");
        match b.info.bug_class {
            BugClass::Sequential => {
                let d = stm_suite::eval::run_lbra(&b);
                println!(
                    "{id}: LBRA used {} failing + {} successful of {} runs, {} predictors",
                    d.stats.failure_runs_used,
                    d.stats.success_runs_used,
                    d.stats.total_runs,
                    d.ranked.len()
                );
            }
            BugClass::Concurrency => {
                let d = stm_suite::eval::run_lcra(&b);
                println!(
                    "{id}: LCRA used {} failing + {} successful of {} runs, {} predictors",
                    d.stats.failure_runs_used,
                    d.stats.success_runs_used,
                    d.stats.total_runs,
                    d.ranked.len()
                );
            }
        }
    }

    let spans = stm_telemetry::take_spans();
    let trace = stm_telemetry::export::chrome_trace(&spans);
    // Round-trip through the parser: never ship a malformed trace.
    if let Err(e) = Json::parse(&trace) {
        eprintln!("internal error: generated trace is not valid JSON: {e}");
        std::process::exit(1);
    }
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&out, &trace).expect("write trace file");
    println!("wrote {out} ({} events)", spans.len());

    println!();
    print!(
        "{}",
        stm_telemetry::export::summary(&stm_telemetry::metrics_snapshot())
    );
}
