//! A one-screen terminal status board for a live diagnosis pipeline,
//! plus the CI smoke gate for the whole observatory stack.
//!
//! **Watch mode** polls a running harness's `--metrics-addr` endpoint
//! and redraws the board each interval: health state (with reasons),
//! the engine gauges, runs/sec, and a per-second rate column for every
//! monotonic series.
//!
//! ```text
//! stm_watch --addr 127.0.0.1:9184 [--interval-ms 1000] [--once]
//! ```
//!
//! **Smoke mode** (`stm_watch --smoke`) runs a real scan-mode
//! [`DiagnosisSession`] with the metrics endpoint live, scrapes
//! `/metrics` and `/health` *during* the run, and asserts the contract
//! CI relies on: the required gauge/counter names are exposed, the
//! board renders, and the pipeline ends in the `healthy` state. It
//! writes the final health snapshot to `results/HEALTH_smoke.json` and
//! exits non-zero on any violation.

use std::net::SocketAddr;
use std::time::Duration;

use stm_core::engine::DiagnosisSession;
use stm_core::runner::Runner;
use stm_core::transform::instrument;
use stm_machine::interp::Machine;
use stm_observatory::watch::{http_get, render_board, Sample};
use stm_observatory::MetricsServer;
use stm_suite::eval::reactive_options;
use stm_telemetry::json::Json;

const HTTP_TIMEOUT: Duration = Duration::from_secs(2);

/// The series names the smoke gate requires on `/metrics` once a
/// session has run to completion.
const REQUIRED_SERIES: &[&str] = &[
    "stm_engine_runs_total",
    "stm_engine_jobs_total",
    "stm_engine_queue_depth",
    "stm_engine_failure_streak",
    "stm_engine_rank_churn",
    "stm_engine_top1_stable_for",
];

fn usage() -> ! {
    eprintln!("usage: stm_watch --addr HOST:PORT [--interval-ms N] [--once]");
    eprintln!("       stm_watch --smoke   (self-contained CI gate)");
    std::process::exit(2);
}

fn fetch(addr: SocketAddr) -> Result<Sample, String> {
    let metrics =
        http_get(addr, "/metrics", HTTP_TIMEOUT).map_err(|e| format!("GET /metrics: {e}"))?;
    let health =
        http_get(addr, "/health", HTTP_TIMEOUT).map_err(|e| format!("GET /health: {e}"))?;
    let sample = Sample::parse(&metrics, &health)?;
    // The convergence panel is best-effort: keep the board usable
    // against servers without a /diagnosis route.
    match http_get(addr, "/diagnosis", HTTP_TIMEOUT) {
        Ok(body) => Ok(sample.clone().with_diagnosis(&body).unwrap_or(sample)),
        Err(_) => Ok(sample),
    }
}

fn watch(addr: SocketAddr, interval: Duration, once: bool) -> ! {
    let mut prev: Option<(Sample, std::time::Instant)> = None;
    loop {
        match fetch(addr) {
            Ok(sample) => {
                let now = std::time::Instant::now();
                let board = render_board(
                    &sample,
                    prev.as_ref()
                        .map(|(p, at)| (p, now.duration_since(*at).as_secs_f64())),
                );
                if !once {
                    // Clear and home, so the board repaints in place.
                    print!("\x1b[2J\x1b[H");
                }
                println!("{board}");
                if once {
                    std::process::exit(0);
                }
                prev = Some((sample, now));
            }
            Err(e) => {
                eprintln!("{addr}: {e}");
                if once {
                    std::process::exit(1);
                }
            }
        }
        std::thread::sleep(interval);
    }
}

/// The self-contained gate: a real session behind a live endpoint.
fn smoke() -> i32 {
    stm_telemetry::set_enabled(true);
    let server = MetricsServer::start("127.0.0.1:0").expect("bind metrics endpoint");
    let addr = server.addr();
    println!("smoke: metrics endpoint on http://{addr}");

    let b = stm_suite::by_id("sort").expect("suite benchmark");
    let opts = reactive_options(&b, true, None);
    let runner = Runner::new(Machine::new(instrument(&b.program, &opts)));
    let base = b.workloads.failing[0].clone();
    let spec = b.truth.spec.clone();

    let mut failures = Vec::new();
    let mut mid_run_scrapes = 0u32;
    let session = std::thread::spawn(move || {
        DiagnosisSession::from_runner(&runner)
            .failure(spec)
            .workloads(vec![base])
            .seeds(0..400)
            .failure_profiles(usize::MAX)
            .success_profiles(usize::MAX)
            .threads(4)
            // Monitor-only: publish the convergence gauges and the
            // /diagnosis document without cutting the scan short.
            .converge(stm_core::converge::StabilityPolicy::never())
            .collect()
    });
    // Scrape while the session runs: the endpoint must serve live.
    while !session.is_finished() {
        if fetch(addr).is_ok() {
            mid_run_scrapes += 1;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    match session.join().expect("session thread") {
        Ok(profiles) => println!("smoke: session done, {} runs", profiles.stats().total_runs),
        Err(e) => failures.push(format!("session failed: {e}")),
    }
    if mid_run_scrapes == 0 {
        failures.push("no successful scrape while the session ran".to_string());
    } else {
        println!("smoke: {mid_run_scrapes} scrapes answered during the run");
    }

    // Let the health machine's recovery hysteresis settle, then take the
    // verdict sample.
    let mut last = None;
    for _ in 0..4 {
        last = fetch(addr).ok();
        std::thread::sleep(Duration::from_millis(10));
    }
    let Some(sample) = last else {
        eprintln!("smoke: FAILED: could not scrape the endpoint after the session");
        return 1;
    };
    for name in REQUIRED_SERIES {
        if !sample.metrics.contains_key(*name) {
            failures.push(format!("/metrics is missing required series {name}"));
        }
    }
    let state = sample.health.get("state").and_then(Json::as_str);
    if state != Some("healthy") {
        failures.push(format!(
            "terminal health state is {state:?}, expected healthy"
        ));
    }
    // /diagnosis must serve a parseable verdict: the session ran with a
    // convergence monitor, so the terminal document is its verdict (the
    // scan ran to quota under `never()`, i.e. stable or stalled — any
    // non-idle verdict string proves the monitor published).
    match http_get(addr, "/diagnosis", HTTP_TIMEOUT) {
        Ok(body) => match Json::parse(body.trim()) {
            Ok(doc) => match doc.get("verdict").and_then(Json::as_str) {
                Some(verdict) if verdict != "idle" => {
                    println!("smoke: /diagnosis verdict: {verdict}");
                }
                other => failures.push(format!(
                    "/diagnosis verdict is {other:?}, expected a session verdict"
                )),
            },
            Err(e) => failures.push(format!("/diagnosis body is not JSON: {e:?}")),
        },
        Err(e) => failures.push(format!("GET /diagnosis: {e}")),
    }

    let board = render_board(&sample, None);
    if !board.contains("health:") {
        failures.push("status board failed to render".to_string());
    }
    if !board.contains("diagnosis —") {
        failures.push("board is missing the convergence panel".to_string());
    }
    println!("\n{board}");

    // The fleet chain panel must render a chain-bearing shard's
    // storyline and fall back to `warming` for a chain-less shard —
    // the same fallback the verdict column uses, never a panic.
    let fleet_doc = r#"{"verdict":"idle","fleet":{"shed_total":0,"shards":{"with-chain":{"verdict":"converged","chain":{"kind":"lbr","links":[{"role":"root-cause","event":"br1=true"},{"role":"failure","event":"br2=false"}]}},"brand-new":{}}}}"#;
    let fleet_board = match sample.clone().with_diagnosis(fleet_doc) {
        Ok(s) => render_board(&s, None),
        Err(e) => {
            failures.push(format!("synthetic fleet doc rejected: {e}"));
            String::new()
        }
    };
    if !fleet_board.contains("chain: br1=true → br2=false") {
        failures.push("fleet panel did not render the chain storyline".to_string());
    }
    if !fleet_board.lines().any(|l| l.trim() == "chain: warming") {
        failures.push("chain-less shard did not fall back to a warming chain row".to_string());
    }

    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/HEALTH_smoke.json", sample.health.encode() + "\n"))
    {
        failures.push(format!("could not write results/HEALTH_smoke.json: {e}"));
    } else {
        println!("wrote results/HEALTH_smoke.json");
    }

    if failures.is_empty() {
        println!("smoke: OK");
        0
    } else {
        for f in &failures {
            eprintln!("smoke: FAILED: {f}");
        }
        1
    }
}

fn main() {
    let mut addr: Option<String> = None;
    let mut interval = Duration::from_millis(1000);
    let mut once = false;
    let mut run_smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--addr" => addr = args.next(),
            "--interval-ms" => {
                let Some(ms) = args.next().and_then(|v| v.parse().ok()) else {
                    usage()
                };
                interval = Duration::from_millis(ms);
            }
            "--once" => once = true,
            "--smoke" => run_smoke = true,
            _ => usage(),
        }
    }
    if run_smoke {
        std::process::exit(smoke());
    }
    let Some(addr) = addr else { usage() };
    let addr: SocketAddr = addr.parse().unwrap_or_else(|e| {
        eprintln!("--addr {addr}: {e}");
        std::process::exit(2);
    });
    watch(addr, interval, once);
}
