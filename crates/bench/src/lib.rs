//! # stm-bench — harness utilities shared by the table/figure binaries
//!
//! One binary per evaluation artifact (see DESIGN.md's experiment index):
//! `table4`, `table5`, `table6`, `table7`, `latency`, `logging_latency`,
//! `capacity`, `bts_overhead`. This library holds the pieces they share:
//! CBI evaluation over suite benchmarks, wall-clock overhead measurement,
//! and table rendering helpers.

#![warn(missing_docs)]

use std::time::Instant;
use stm_baselines::cbi::{cbi, instrument_cbi, CbiConfig};
use stm_core::runner::Runner;
use stm_core::transform::{instrument, InstrumentOptions};
use stm_hardware::HwConfig;
use stm_machine::interp::{Machine, RunConfig};
use stm_suite::eval::{expand_workloads, lbrlog_runner, reactive_options};
use stm_suite::{Benchmark, Language};

/// Renders an optional rank/position as the tables do (`Y n` / `-`).
pub fn mark(v: Option<usize>) -> String {
    match v {
        Some(n) => format!("Y {n}"),
        None => "-".to_string(),
    }
}

/// Renders an optional distance (`None` = ∞, different file).
pub fn dist(v: Option<u32>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "inf".to_string(),
    }
}

/// Renders an optional rank/distance as JSON (`null` when absent).
pub fn json_rank(v: Option<usize>) -> stm_telemetry::json::Json {
    match v {
        Some(n) => stm_telemetry::json::Json::from(n),
        None => stm_telemetry::json::Json::Null,
    }
}

/// Runs CBI on a benchmark (its default 1/100 sampling) with the given run
/// budgets and returns the rank of the target branch. `None` when CBI is
/// inapplicable (C++ applications) or no related predicate survives.
pub fn cbi_rank(b: &Benchmark, failing_runs: usize, successful_runs: usize) -> Option<usize> {
    if b.info.language == Language::Cpp {
        return None; // the CBI framework instruments C programs only
    }
    let target = b.truth.target_branch()?;
    let machine = Machine::new(instrument_cbi(&b.program));
    let runner = Runner::new(machine).with_run_config(RunConfig {
        sample_mean: 100,
        ..RunConfig::default()
    });
    let (failing, passing) = expand_workloads(b, &runner);
    let cfg = CbiConfig {
        failing_runs,
        successful_runs,
        max_runs: failing_runs.max(successful_runs) * 20,
    };
    let d = cbi(&runner, &failing, &passing, &b.truth.spec, &cfg);
    d.rank_of_branch(target)
}

/// Wall-clock time of `iters` runs of the benchmark's performance workload
/// on the given runner, in seconds.
fn time_runs(runner: &Runner, b: &Benchmark, iters: u32) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        let mut w = b.workloads.perf.clone();
        w.seed = i as u64;
        let _ = runner.run(&w);
    }
    start.elapsed().as_secs_f64()
}

/// Retired interpreter operations over `iters` perf-workload runs — the
/// simulator's deterministic time proxy (each operation costs one
/// interpreter step, so extra instrumentation work shows up exactly).
fn step_runs(runner: &Runner, b: &Benchmark, iters: u32) -> u64 {
    let mut total = 0;
    for i in 0..iters {
        let mut w = b.workloads.perf.clone();
        w.seed = i as u64;
        total += runner.run(&w).steps;
    }
    total
}

/// Measured run-time overheads for one benchmark (the Table 6 "Overhead"
/// columns), as percentages over the uninstrumented baseline.
#[derive(Debug, Clone, Copy)]
pub struct OverheadRow {
    /// LBRLOG with toggling.
    pub lbrlog_tog: f64,
    /// LBRLOG without toggling.
    pub lbrlog_no_tog: f64,
    /// LBRA, reactive success-site scheme.
    pub lbra_reactive: f64,
    /// LBRA, proactive success-site scheme.
    pub lbra_proactive: f64,
    /// CBI with 1/100 sampling; `None` for C++ applications.
    pub cbi: Option<f64>,
}

/// Measures the overhead columns for one benchmark as the relative growth
/// in retired interpreter operations — deterministic, unlike wall clock on
/// sub-millisecond simulated workloads. The paper measures wall time on
/// real hardware; in this simulator every extra instrumentation
/// instruction costs one interpreter step, so the step ratio is the
/// faithful analogue (wall-clock micro-benchmarks live in
/// `benches/overhead.rs`).
pub fn measure_overheads(b: &Benchmark, iters: u32) -> OverheadRow {
    let baseline_runner = Runner::new(Machine::new(b.program.clone()));
    let base = step_runs(&baseline_runner, b, iters) as f64;
    let _ = time_runs(&baseline_runner, b, 1); // keep the wall-clock path exercised
    let run_variant = |runner: &Runner| {
        let t = step_runs(runner, b, iters) as f64;
        ((t - base) / base * 100.0).max(0.0)
    };

    let lbrlog_tog = run_variant(&lbrlog_runner(b, true));
    let lbrlog_no_tog = run_variant(&lbrlog_runner(b, false));
    let reactive = Runner::new(Machine::new(instrument(
        &b.program,
        &reactive_options(b, true, None),
    )));
    let lbra_reactive = run_variant(&reactive);
    let proactive = Runner::new(Machine::new(instrument(
        &b.program,
        &InstrumentOptions::lbra_proactive(),
    )));
    let lbra_proactive = run_variant(&proactive);
    let cbi = if b.info.language == Language::Cpp {
        None
    } else {
        let r = Runner::new(Machine::new(instrument_cbi(&b.program))).with_run_config(RunConfig {
            sample_mean: 100,
            ..RunConfig::default()
        });
        Some(run_variant(&r))
    };
    OverheadRow {
        lbrlog_tog,
        lbrlog_no_tog,
        lbra_reactive,
        lbra_proactive,
        cbi,
    }
}

/// Times `iters` runs of the benchmark's perf workload with and without a
/// BTS attached (experiment E8); returns `(baseline_secs, bts_secs)`.
pub fn bts_comparison(b: &Benchmark, iters: u32) -> (f64, f64) {
    let plain = lbrlog_runner(b, true);
    let with_bts = lbrlog_runner(b, true).with_hw_config(HwConfig {
        enable_bts: true,
        ..HwConfig::default()
    });
    let mut base = f64::MAX;
    let mut bts = f64::MAX;
    for _ in 0..3 {
        base = base.min(time_runs(&plain, b, iters));
        bts = bts.min(time_runs(&with_bts, b, iters));
    }
    (base, bts)
}

/// Collects per-benchmark telemetry counter deltas for a harness binary
/// and writes them as one `results/BENCH_<harness>.json` document next to
/// the harness's human-readable table.
#[derive(Debug)]
pub struct MetricsEmitter {
    harness: &'static str,
    last: stm_telemetry::MetricsSnapshot,
    benchmarks: Vec<(String, stm_telemetry::json::Json)>,
    top_level: Vec<(&'static str, stm_telemetry::json::Json)>,
}

impl MetricsEmitter {
    /// Enables telemetry collection and starts a fresh emitter.
    pub fn new(harness: &'static str) -> Self {
        stm_telemetry::set_enabled(true);
        MetricsEmitter {
            harness,
            last: stm_telemetry::metrics_snapshot(),
            benchmarks: Vec::new(),
            top_level: Vec::new(),
        }
    }

    /// Records a harness-wide headline field at the top level of the
    /// document — *outside* `benchmarks`, which `bench_diff` gates, so
    /// informational values (throughput headlines) never fail a
    /// regression gate.
    pub fn top_level(&mut self, key: &'static str, value: stm_telemetry::json::Json) {
        self.top_level.push((key, value));
    }

    /// Records the counter deltas accumulated since the previous
    /// checkpoint under `id`, merged with harness-specific `extra` fields
    /// (ranks, ratios...).
    pub fn checkpoint(&mut self, id: &str, extra: Vec<(&'static str, stm_telemetry::json::Json)>) {
        use stm_telemetry::json::Json;
        let now = stm_telemetry::metrics_snapshot();
        let counters: std::collections::BTreeMap<String, Json> = now
            .delta_since(&self.last)
            .counters
            .into_iter()
            .map(|(name, v)| (name, Json::from(v)))
            .collect();
        self.last = now;
        let mut obj = std::collections::BTreeMap::new();
        for (k, v) in extra {
            obj.insert(k.to_string(), v);
        }
        obj.insert("counters".to_string(), Json::Obj(counters));
        self.benchmarks.push((id.to_string(), Json::Obj(obj)));
    }

    /// Writes `results/BENCH_<harness>.json` and returns its path.
    pub fn finish(self) -> std::io::Result<String> {
        use stm_telemetry::json::Json;
        // A harness may checkpoint the same benchmark twice (ranks, then
        // overheads); merge the objects, first checkpoint winning ties.
        let mut merged: std::collections::BTreeMap<String, Json> =
            std::collections::BTreeMap::new();
        for (id, obj) in self.benchmarks {
            match merged.entry(id) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(obj);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    if let (Json::Obj(dst), Json::Obj(src)) = (e.get_mut(), obj) {
                        for (k, v) in src {
                            dst.entry(k).or_insert(v);
                        }
                    }
                }
            }
        }
        let mut doc = std::collections::BTreeMap::new();
        doc.insert("harness".to_string(), Json::from(self.harness));
        doc.insert("benchmarks".to_string(), Json::Obj(merged));
        doc.insert(
            "totals".to_string(),
            stm_telemetry::export::metrics_json(&stm_telemetry::metrics_snapshot()),
        );
        for (k, v) in self.top_level {
            doc.insert(k.to_string(), v);
        }
        let doc = Json::Obj(doc);
        std::fs::create_dir_all("results")?;
        let path = format!("results/BENCH_{}.json", self.harness);
        std::fs::write(&path, doc.encode() + "\n")?;
        Ok(path)
    }
}

/// The shared observability flags every harness binary understands:
/// `--telemetry` turns span/metric collection on for the whole process,
/// `--trace-out <path>` additionally exports a Chrome `trace_event`
/// JSON when the harness exits, and `--metrics-addr <addr>` serves the
/// live registry over HTTP (`/metrics`, `/health`, `/events`) for the
/// process's lifetime — both imply `--telemetry`. One parser, one
/// behaviour — `table4`…`table7`, `diagnose_report`, `trace_run` and
/// `profile_run` all route through here instead of hand-rolling flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryCli {
    /// Collection requested (`--telemetry`, or implied by the others).
    pub enabled: bool,
    /// Export path for the Chrome trace, when requested.
    pub trace_out: Option<String>,
    /// Bind address for the observatory endpoint (`127.0.0.1:0` picks an
    /// ephemeral port, printed on startup), when requested.
    pub metrics_addr: Option<String>,
}

impl TelemetryCli {
    /// Extracts the shared flags out of `args`, removing them so the
    /// caller's own positional/flag parsing never sees them.
    ///
    /// # Errors
    ///
    /// Returns a usage message when `--trace-out` is missing its path.
    pub fn extract(args: &mut Vec<String>) -> Result<TelemetryCli, String> {
        let mut cli = TelemetryCli::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--telemetry" => {
                    cli.enabled = true;
                    args.remove(i);
                }
                "--trace-out" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err("--trace-out needs a file path".to_string());
                    }
                    cli.trace_out = Some(args.remove(i));
                    cli.enabled = true;
                }
                "--metrics-addr" => {
                    args.remove(i);
                    if i >= args.len() {
                        return Err(
                            "--metrics-addr needs a bind address (e.g. 127.0.0.1:0)".to_string()
                        );
                    }
                    cli.metrics_addr = Some(args.remove(i));
                    cli.enabled = true;
                }
                _ => i += 1,
            }
        }
        Ok(cli)
    }

    /// Extracts the shared flags from the process arguments; exits with
    /// the usage error on a malformed invocation. Returns the remaining
    /// arguments (program name excluded) for the caller to parse.
    pub fn from_env() -> (TelemetryCli, Vec<String>) {
        let mut args: Vec<String> = std::env::args().skip(1).collect();
        match TelemetryCli::extract(&mut args) {
            Ok(cli) => (cli, args),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }

    /// Applies the flags: enables collection, drains any spans a
    /// previous phase left behind (so an exported trace starts at this
    /// harness's own work), and starts the observatory endpoint when
    /// `--metrics-addr` was given. The returned server, if any, serves
    /// for as long as the caller keeps it alive — bind it for the
    /// harness's whole run. Exits with the usage error when the bind
    /// address is unusable, matching [`TelemetryCli::from_env`].
    #[must_use = "bind the returned server: dropping it stops the metrics endpoint"]
    pub fn apply(&self) -> Option<stm_observatory::MetricsServer> {
        if self.enabled {
            stm_telemetry::set_enabled(true);
            let _ = stm_telemetry::take_spans();
        }
        let addr = self.metrics_addr.as_ref()?;
        match stm_observatory::MetricsServer::start(addr) {
            Ok(server) => {
                // The one place a `:0` caller can learn the real port.
                eprintln!("metrics endpoint listening on http://{}", server.addr());
                Some(server)
            }
            Err(e) => {
                eprintln!("--metrics-addr {addr}: {e}");
                std::process::exit(2);
            }
        }
    }

    /// Finishes the harness: writes the Chrome trace when `--trace-out`
    /// was given (round-tripped through the strict JSON parser first —
    /// never ship a malformed trace) and prints the metrics summary when
    /// telemetry was on. Returns the trace path if one was written.
    ///
    /// # Errors
    ///
    /// Returns an error when the trace fails validation or the write
    /// fails.
    pub fn finish(&self) -> Result<Option<String>, String> {
        let Some(out) = &self.trace_out else {
            return Ok(None);
        };
        write_trace(&stm_telemetry::take_spans(), out)?;
        Ok(Some(out.clone()))
    }
}

/// Writes `spans` as a Chrome `trace_event` JSON at `out`, round-tripped
/// through the strict parser first — never ship a malformed trace.
/// Harnesses that need the spans for their own analysis (critical-path
/// attribution) drain them once and call this directly instead of
/// [`TelemetryCli::finish`].
///
/// # Errors
///
/// Returns an error when the trace fails validation or the write fails.
pub fn write_trace(spans: &[stm_telemetry::SpanRecord], out: &str) -> Result<(), String> {
    let trace = stm_telemetry::export::chrome_trace(spans);
    if let Err(e) = stm_telemetry::json::Json::parse(&trace) {
        return Err(format!("generated trace is not valid JSON: {e}"));
    }
    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    std::fs::write(out, &trace).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!("wrote {out} ({} events)", spans.len());
    Ok(())
}

/// A dependency-free micro-benchmark harness for the `benches/` targets
/// (`harness = false`): calibrates the iteration count until a sample
/// takes long enough to time reliably, then reports the best of several
/// samples as ns/iter.
pub mod microbench {
    pub use std::hint::black_box;
    use std::time::{Duration, Instant};

    const TARGET: Duration = Duration::from_millis(20);
    const SAMPLES: usize = 5;

    /// Times one closure and prints `name  ns/iter`; returns the ns/iter.
    pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> f64 {
        // Grow the per-sample iteration count until one sample reaches the
        // timing target (or the loop is clearly slow enough already).
        let mut iters: u64 = 1;
        loop {
            let t = sample(iters, &mut f);
            if t >= TARGET || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        let best = (0..SAMPLES)
            .map(|_| sample(iters, &mut f).as_nanos() as f64 / iters as f64)
            .fold(f64::INFINITY, f64::min);
        println!("{name:<44} {best:>14.1} ns/iter  ({iters} iters/sample)");
        best
    }

    fn sample<T>(iters: u64, f: &mut impl FnMut() -> T) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_dist_render() {
        assert_eq!(mark(Some(3)), "Y 3");
        assert_eq!(mark(None), "-");
        assert_eq!(dist(Some(0)), "0");
        assert_eq!(dist(None), "inf");
    }

    #[test]
    fn telemetry_cli_extracts_and_leaves_the_rest() {
        let mut args: Vec<String> = ["sort", "--telemetry", "--top", "3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = TelemetryCli::extract(&mut args).unwrap();
        assert!(cli.enabled);
        assert_eq!(cli.trace_out, None);
        assert_eq!(args, vec!["sort", "--top", "3"]);

        let mut args: Vec<String> = ["--trace-out", "results/T.json", "apache4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = TelemetryCli::extract(&mut args).unwrap();
        assert!(cli.enabled, "--trace-out implies --telemetry");
        assert_eq!(cli.trace_out.as_deref(), Some("results/T.json"));
        assert_eq!(args, vec!["apache4"]);

        let mut args: Vec<String> = ["--metrics-addr", "127.0.0.1:0", "sort"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let cli = TelemetryCli::extract(&mut args).unwrap();
        assert!(cli.enabled, "--metrics-addr implies --telemetry");
        assert_eq!(cli.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        assert_eq!(args, vec!["sort"]);

        let mut args = vec!["--trace-out".to_string()];
        assert!(TelemetryCli::extract(&mut args).is_err());

        let mut args = vec!["--metrics-addr".to_string()];
        assert!(TelemetryCli::extract(&mut args).is_err());

        let mut args = vec!["plain".to_string()];
        let cli = TelemetryCli::extract(&mut args).unwrap();
        assert_eq!(cli, TelemetryCli::default());
        assert!(cli.finish().unwrap().is_none(), "no trace requested");
        assert!(cli.apply().is_none(), "no endpoint requested");
    }

    #[test]
    fn cbi_is_na_for_cpp() {
        let b = stm_suite::by_id("cppcheck2").unwrap();
        assert_eq!(cbi_rank(&b, 10, 10), None);
    }

    #[test]
    fn overheads_have_the_papers_shape_on_average() {
        // CBI executes a probe per branch; LBRLOG's instrumentation sits
        // on failure paths and library boundaries. Across benchmarks, CBI
        // must cost more (individual rows can invert when a program is
        // library-call-heavy but branch-light).
        let mut lbr = 0.0;
        let mut cbi = 0.0;
        for id in ["apache3", "rm", "squid2"] {
            let b = stm_suite::by_id(id).unwrap();
            let row = measure_overheads(&b, 10);
            assert!(row.lbrlog_tog.is_finite());
            lbr += row.lbrlog_tog;
            cbi += row.cbi.expect("C program");
        }
        assert!(cbi > lbr, "cbi {cbi:.2}% <= lbrlog {lbr:.2}%");
    }
}
