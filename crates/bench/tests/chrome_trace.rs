//! Golden-file test for the `trace_run` export path: a full LBRA
//! diagnosis must yield a valid Chrome `trace_event` JSON document whose
//! spans cover the interpreter, the ring snapshots and all three
//! diagnosis phases.

use stm_telemetry::json::Json;

/// Span names that every sequential-benchmark trace must contain.
const EXPECTED_SPANS: &[&str] = &[
    "machine.run",
    "runner.run",
    "hw.lbr.snapshot",
    "engine.collect",
    "engine.job",
    "lbra.profile_extraction",
    "lbra.ranking",
];

#[test]
fn trace_run_export_is_valid_chrome_trace() {
    stm_telemetry::set_enabled(true);
    let b = stm_suite::by_id("sort").expect("sort benchmark");
    {
        let _run = stm_telemetry::span_cat("trace_run", "harness");
        let d = stm_suite::eval::run_lbra(&b);
        assert!(d.stats.failure_runs_used > 0, "no failing runs collected");
    }
    let spans = stm_telemetry::take_spans();
    stm_telemetry::set_enabled(false);

    let text = stm_telemetry::export::chrome_trace(&spans);
    let doc = Json::parse(&text).expect("trace parses as JSON");

    // Top-level Chrome trace shape.
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );

    // Every event is a well-formed complete ("X") or instant ("i") event.
    let mut names = std::collections::BTreeSet::new();
    for ev in events {
        let name = ev.get("name").and_then(|v| v.as_str()).expect("name");
        names.insert(name.to_string());
        assert!(ev.get("cat").and_then(|v| v.as_str()).is_some());
        assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("pid").and_then(|v| v.as_f64()).is_some());
        assert!(ev.get("tid").and_then(|v| v.as_f64()).is_some());
        match ev.get("ph").and_then(|v| v.as_str()) {
            Some("X") => {
                let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur");
                assert!(dur >= 0.0);
            }
            Some("i") => {
                assert_eq!(ev.get("s").and_then(|v| v.as_str()), Some("t"));
            }
            other => panic!("unexpected ph {other:?} on {name}"),
        }
    }

    for want in EXPECTED_SPANS {
        assert!(names.contains(*want), "missing span {want:?} in {names:?}");
    }

    // Phase nesting: every run job executes inside the engine's
    // collection window (workers are scoped threads the driver joins),
    // and extraction/ranking happen only after collection has begun.
    let range = |name: &str| {
        spans
            .iter()
            .find(|s| s.name == name)
            .map(|s| (s.start_us, s.start_us + s.dur_us.unwrap_or(0)))
            .expect(name)
    };
    let (c0, c1) = range("engine.collect");
    for s in spans.iter().filter(|s| s.name == "engine.job") {
        let (j0, j1) = (s.start_us, s.start_us + s.dur_us.unwrap_or(0));
        assert!(c0 <= j0 && j1 <= c1, "job outside collection window");
    }
    let (e0, _) = range("lbra.profile_extraction");
    let (r0, _) = range("lbra.ranking");
    assert!(c0 <= e0, "extraction before collection");
    assert!(e0 <= r0, "ranking before extraction");
}
