//! The logging-latency contrast of §5.3: serializing a 16-entry LBR ring
//! versus a call-stack walk versus a full coredump.

use stm_bench::microbench::bench;
use stm_core::logging::LogPayload;

fn main() {
    let p = LogPayload::ShortTermMemory { entries: 16 };
    bench("failure_logging/lbr_16_entries", || p.materialize());

    let p = LogPayload::CallStack { frames: 40 };
    bench("failure_logging/call_stack_40_frames", || p.materialize());

    let p = LogPayload::Coredump {
        bytes: 16 * 1024 * 1024,
    };
    bench("failure_logging/coredump_16MiB", || p.materialize());
}
