//! The logging-latency contrast of §5.3: serializing a 16-entry LBR ring
//! versus a call-stack walk versus a full coredump.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stm_core::logging::LogPayload;

fn bench_logging(c: &mut Criterion) {
    let mut g = c.benchmark_group("failure_logging");
    g.bench_function("lbr_16_entries", |b| {
        let p = LogPayload::ShortTermMemory { entries: 16 };
        b.iter(|| black_box(p.materialize()));
    });
    g.bench_function("call_stack_40_frames", |b| {
        let p = LogPayload::CallStack { frames: 40 };
        b.iter(|| black_box(p.materialize()));
    });
    g.sample_size(10);
    g.bench_function("coredump_16MiB", |b| {
        let p = LogPayload::Coredump {
            bytes: 16 * 1024 * 1024,
        };
        b.iter(|| black_box(p.materialize()));
    });
    g.finish();
}

criterion_group!(benches, bench_logging);
criterion_main!(benches);
