//! Micro-benchmarks of the hardware short-term-memory facilities: the
//! per-event costs that make LBR "negligible overhead" (§2.1) in the
//! real design — a ring push — versus BTS's unbounded buffer append,
//! plus the MESI cache access and LCR record paths.

use stm_bench::microbench::{bench, black_box};
use stm_hardware::{Bts, CacheConfig, CacheSystem, HardwareCtx, Lbr, Lcr};
use stm_machine::events::{
    AccessEvent, AccessKind, BranchEvent, BranchKind, CoherenceState, Hardware, LcrConfig, Ring,
};
use stm_machine::ids::{CoreId, ThreadId};

fn branch(i: u64) -> BranchEvent {
    BranchEvent {
        from: 0x400000 + i * 4,
        to: 0x400100,
        kind: BranchKind::CondJump,
        ring: Ring::User,
    }
}

fn bench_lbr() {
    let mut lbr = Lbr::new(16);
    lbr.enable();
    let mut i = 0u64;
    bench("lbr/record", || {
        i += 1;
        lbr.record(black_box(branch(i)));
    });

    let mut lbr = Lbr::new(16);
    lbr.enable();
    let ev = BranchEvent {
        kind: BranchKind::NearRelCall,
        ..branch(1)
    };
    bench("lbr/record_filtered_out", || lbr.record(black_box(ev)));

    let mut lbr = Lbr::new(16);
    lbr.enable();
    for i in 0..40 {
        lbr.record(branch(i));
    }
    bench("lbr/snapshot", || lbr.snapshot());
}

fn bench_bts() {
    let mut bts = Bts::with_limit(1 << 20);
    bts.enable();
    let mut i = 0u64;
    bench("bts/record", || {
        i += 1;
        bts.record(black_box(branch(i)));
    });
}

fn bench_cache() {
    let mut sys = CacheSystem::new(4, CacheConfig::PAPER);
    sys.access(CoreId(0), 0x1000, AccessKind::Load);
    bench("cache/load_hit", || {
        sys.access(CoreId(0), black_box(0x1000), AccessKind::Load)
    });

    let mut sys = CacheSystem::new(4, CacheConfig::PAPER);
    let mut addr = 0u64;
    bench("cache/load_streaming_misses", || {
        addr += 64;
        sys.access(CoreId(0), black_box(addr), AccessKind::Load)
    });

    let mut sys = CacheSystem::new(4, CacheConfig::PAPER);
    bench("cache/store_with_invalidation", || {
        sys.access(CoreId(0), 0x2000, AccessKind::Load);
        sys.access(CoreId(1), black_box(0x2000), AccessKind::Store)
    });
}

fn bench_lcr_and_context() {
    let mut lcr = Lcr::new(16);
    lcr.configure(LcrConfig::SPACE_CONSUMING);
    lcr.enable(ThreadId::MAIN);
    bench("lcr/record", || {
        lcr.record(
            ThreadId::MAIN,
            black_box(0x400010),
            CoherenceState::Invalid,
            AccessKind::Load,
            Ring::User,
        )
    });

    let mut hw = HardwareCtx::with_defaults();
    hw.ctl(
        CoreId(0),
        ThreadId::MAIN,
        stm_machine::events::HwCtlOp::EnableLcr,
    );
    let mut addr = 0u64;
    bench("context/on_access_full_path", || {
        addr = (addr + 8) % (1 << 16);
        hw.on_access(
            CoreId(0),
            ThreadId::MAIN,
            AccessEvent {
                pc: 0x400010,
                addr: black_box(addr),
                kind: AccessKind::Load,
                ring: Ring::User,
            },
        )
    });
}

fn main() {
    bench_lbr();
    bench_bts();
    bench_cache();
    bench_lcr_and_context();
}
