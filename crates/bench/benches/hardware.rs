//! Micro-benchmarks of the hardware short-term-memory facilities: the
//! per-event costs that make LBR "negligible overhead" (§2.1) in the
//! real design — a ring push — versus BTS's unbounded buffer append,
//! plus the MESI cache access and LCR record paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stm_hardware::{Bts, CacheConfig, CacheSystem, HardwareCtx, Lbr, Lcr};
use stm_machine::events::{
    AccessEvent, AccessKind, BranchEvent, BranchKind, CoherenceState, Hardware, LcrConfig, Ring,
};
use stm_machine::ids::{CoreId, ThreadId};

fn branch(i: u64) -> BranchEvent {
    BranchEvent {
        from: 0x400000 + i * 4,
        to: 0x400100,
        kind: BranchKind::CondJump,
        ring: Ring::User,
    }
}

fn bench_lbr(c: &mut Criterion) {
    let mut g = c.benchmark_group("lbr");
    g.bench_function("record", |b| {
        let mut lbr = Lbr::new(16);
        lbr.enable();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            lbr.record(black_box(branch(i)));
        });
    });
    g.bench_function("record_filtered_out", |b| {
        let mut lbr = Lbr::new(16);
        lbr.enable();
        let ev = BranchEvent {
            kind: BranchKind::NearRelCall,
            ..branch(1)
        };
        b.iter(|| lbr.record(black_box(ev)));
    });
    g.bench_function("snapshot", |b| {
        let mut lbr = Lbr::new(16);
        lbr.enable();
        for i in 0..40 {
            lbr.record(branch(i));
        }
        b.iter(|| black_box(lbr.snapshot()));
    });
    g.finish();
}

fn bench_bts(c: &mut Criterion) {
    c.bench_function("bts/record", |b| {
        let mut bts = Bts::with_limit(1 << 20);
        bts.enable();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            bts.record(black_box(branch(i)));
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("load_hit", |b| {
        let mut sys = CacheSystem::new(4, CacheConfig::PAPER);
        sys.access(CoreId(0), 0x1000, AccessKind::Load);
        b.iter(|| sys.access(CoreId(0), black_box(0x1000), AccessKind::Load));
    });
    g.bench_function("load_streaming_misses", |b| {
        let mut sys = CacheSystem::new(4, CacheConfig::PAPER);
        let mut addr = 0u64;
        b.iter(|| {
            addr += 64;
            sys.access(CoreId(0), black_box(addr), AccessKind::Load)
        });
    });
    g.bench_function("store_with_invalidation", |b| {
        let mut sys = CacheSystem::new(4, CacheConfig::PAPER);
        b.iter(|| {
            sys.access(CoreId(0), 0x2000, AccessKind::Load);
            sys.access(CoreId(1), black_box(0x2000), AccessKind::Store)
        });
    });
    g.finish();
}

fn bench_lcr_and_context(c: &mut Criterion) {
    c.bench_function("lcr/record", |b| {
        let mut lcr = Lcr::new(16);
        lcr.configure(LcrConfig::SPACE_CONSUMING);
        lcr.enable(ThreadId::MAIN);
        b.iter(|| {
            lcr.record(
                ThreadId::MAIN,
                black_box(0x400010),
                CoherenceState::Invalid,
                AccessKind::Load,
                Ring::User,
            )
        });
    });
    c.bench_function("context/on_access_full_path", |b| {
        let mut hw = HardwareCtx::with_defaults();
        hw.ctl(CoreId(0), ThreadId::MAIN, stm_machine::events::HwCtlOp::EnableLcr);
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 8) % (1 << 16);
            hw.on_access(
                CoreId(0),
                ThreadId::MAIN,
                AccessEvent {
                    pc: 0x400010,
                    addr: black_box(addr),
                    kind: AccessKind::Load,
                    ring: Ring::User,
                },
            )
        });
    });
}

criterion_group!(benches, bench_lbr, bench_bts, bench_cache, bench_lcr_and_context);
criterion_main!(benches);
