//! The run-time overhead contrast of Table 6, as a wall-clock comparison:
//! one `sort` performance-workload run under (a) no instrumentation,
//! (b) LBRLOG with toggling, (c) LBRLOG without toggling, and (d) CBI's
//! sampled probes. The ordering (a ≈ c ≤ b ≪ d) is the paper's story.

use stm_baselines::cbi::instrument_cbi;
use stm_bench::microbench::bench;
use stm_core::runner::Runner;
use stm_machine::interp::{Machine, RunConfig};
use stm_suite::eval::lbrlog_runner;

fn main() {
    let b = stm_suite::by_id("sort").expect("sort benchmark");
    let w = b.workloads.perf.clone();

    let baseline = Runner::new(Machine::new(b.program.clone()));
    bench("sort_perf_workload/baseline", || baseline.run(&w));

    let lbrlog = lbrlog_runner(&b, true);
    bench("sort_perf_workload/lbrlog_toggling", || lbrlog.run(&w));

    let lbrlog_raw = lbrlog_runner(&b, false);
    bench("sort_perf_workload/lbrlog_no_toggling", || {
        lbrlog_raw.run(&w)
    });

    let cbi = Runner::new(Machine::new(instrument_cbi(&b.program))).with_run_config(RunConfig {
        sample_mean: 100,
        ..RunConfig::default()
    });
    bench("sort_perf_workload/cbi_sampled", || cbi.run(&w));
}
