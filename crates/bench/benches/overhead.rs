//! The run-time overhead contrast of Table 6, as a Criterion comparison:
//! one `sort` performance-workload run under (a) no instrumentation,
//! (b) LBRLOG with toggling, (c) LBRLOG without toggling, and (d) CBI's
//! sampled probes. The ordering (a ≈ c ≤ b ≪ d) is the paper's story.

use criterion::{criterion_group, criterion_main, Criterion};
use stm_baselines::cbi::instrument_cbi;
use stm_core::runner::Runner;
use stm_machine::interp::{Machine, RunConfig};
use stm_suite::eval::lbrlog_runner;

fn bench_overhead(c: &mut Criterion) {
    let b = stm_suite::by_id("sort").expect("sort benchmark");
    let w = b.workloads.perf.clone();
    let mut g = c.benchmark_group("sort_perf_workload");

    let baseline = Runner::new(Machine::new(b.program.clone()));
    g.bench_function("baseline", |bch| bch.iter(|| baseline.run(&w)));

    let lbrlog = lbrlog_runner(&b, true);
    g.bench_function("lbrlog_toggling", |bch| bch.iter(|| lbrlog.run(&w)));

    let lbrlog_raw = lbrlog_runner(&b, false);
    g.bench_function("lbrlog_no_toggling", |bch| bch.iter(|| lbrlog_raw.run(&w)));

    let cbi = Runner::new(Machine::new(instrument_cbi(&b.program))).with_run_config(RunConfig {
        sample_mean: 100,
        ..RunConfig::default()
    });
    g.bench_function("cbi_sampled", |bch| bch.iter(|| cbi.run(&w)));
    g.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
