//! Statistical-model throughput: ranking cost of the §5.2 harmonic-mean
//! model and the CBI Importance model as the profile count grows — the
//! analysis-side of the diagnosis-latency story.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use stm_baselines::scoring::CbiModel;
use stm_bench::microbench::bench;
use stm_core::ranking::RankingModel;
use stm_machine::rng::SplitMix64;

fn profile(rng: &mut SplitMix64, events: u64) -> BTreeSet<u64> {
    (0..16).map(|_| rng.next_below(events)).collect()
}

fn main() {
    for &runs in &[10usize, 100, 1000] {
        let mut rng = SplitMix64::new(7);
        let mut m = RankingModel::new();
        for i in 0..runs {
            m.add_profile(i % 2 == 0, profile(&mut rng, 400));
        }
        bench(&format!("rank/harmonic_mean/{runs}"), || m.rank());

        let mut rng = SplitMix64::new(7);
        let mut m = CbiModel::new();
        for i in 0..runs {
            let obs: BTreeMap<u64, bool> = (0..16)
                .map(|_| (rng.next_below(400), rng.next_below(2) == 0))
                .collect();
            m.add_run(i % 2 == 0, obs);
        }
        bench(&format!("rank/cbi_importance/{runs}"), || m.rank());
    }
}
