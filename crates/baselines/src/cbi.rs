//! The CBI baseline: Cooperative Bug Isolation with branch predicates and
//! 1/100 random sampling (Liblit et al., PLDI'03/'05) — the system the
//! paper compares LBRA against in Table 6 and §7.2.
//!
//! CBI instruments every source conditional with a sampled probe. A run's
//! report says, per branch, whether the probe fired at all and which
//! outcomes it saw; the [`CbiModel`] ranks `(branch, outcome)` predicates
//! by Importance. Because the probes are sampled at 1/100, a predicate must
//! fire in many failing runs to become rankable — hence CBI's ~1000-run
//! diagnosis latency, versus LBRA's 10.

use crate::scoring::{CbiModel, ScoredPredicate};
use std::collections::BTreeMap;
use stm_core::runner::{FailureSpec, RunClass, Runner, Workload};
use stm_machine::ids::{BranchId, SampleId};
use stm_machine::ir::{Instr, Program, Stmt, Terminator};
use stm_machine::report::RunReport;

/// A CBI branch predicate: "branch `branch` evaluated `taken`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchPredicate {
    /// The source branch.
    pub branch: BranchId,
    /// The outcome the predicate asserts.
    pub taken: bool,
}

/// Instruments every conditional branch of the application code with a
/// sampled probe (the CBI compiler pass). The probe id equals the branch
/// id, so reports decode trivially.
pub fn instrument_cbi(program: &Program) -> Program {
    let mut p = program.clone();
    for func in &mut p.functions {
        if func.is_library {
            continue;
        }
        for block in &mut func.blocks {
            if let Terminator::Br { cond, .. } = block.term {
                let branch = block
                    .branch
                    .expect("program must be finalized before CBI instrumentation");
                block.stmts.push(Stmt {
                    instr: Instr::Sample {
                        id: SampleId::new(branch.raw()),
                        value: cond,
                    },
                    loc: block.term_loc,
                });
            }
        }
    }
    p.finalize();
    debug_assert!(p.validate().is_ok());
    p
}

/// Per-run predicate report extraction: which branches were sampled and
/// which outcomes were seen.
fn run_observations(report: &RunReport) -> BTreeMap<BranchPredicate, bool> {
    let mut obs: BTreeMap<BranchPredicate, bool> = BTreeMap::new();
    for s in &report.samples {
        let branch = BranchId::new(s.id.raw());
        let taken = s.value != 0;
        for outcome in [true, false] {
            let pred = BranchPredicate {
                branch,
                taken: outcome,
            };
            let held = taken == outcome;
            obs.entry(pred).and_modify(|w| *w |= held).or_insert(held);
        }
    }
    obs
}

/// CBI collection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbiConfig {
    /// Failing runs to collect (the CBI default workload is 1000).
    pub failing_runs: usize,
    /// Successful runs to collect.
    pub successful_runs: usize,
    /// Hard cap on runs per phase.
    pub max_runs: usize,
}

impl Default for CbiConfig {
    fn default() -> Self {
        CbiConfig {
            failing_runs: 1000,
            successful_runs: 1000,
            max_runs: 20_000,
        }
    }
}

/// The result of a CBI diagnosis.
#[derive(Debug, Clone)]
pub struct CbiDiagnosis {
    /// Ranked predicates, best first (only those with positive Increase).
    pub ranked: Vec<ScoredPredicate<BranchPredicate>>,
    /// Failing runs consumed.
    pub failing_runs: usize,
    /// Successful runs consumed.
    pub successful_runs: usize,
}

impl CbiDiagnosis {
    /// 1-based rank of the first predicate involving `branch`.
    pub fn rank_of_branch(&self, branch: BranchId) -> Option<usize> {
        CbiModel::rank_of(&self.ranked, |r| r.predicate.branch == branch)
    }

    /// The best predicate.
    pub fn top(&self) -> Option<&ScoredPredicate<BranchPredicate>> {
        self.ranked.first()
    }
}

/// Runs CBI: executes failing and passing workloads under sampling and
/// ranks branch predicates.
///
/// `runner` must wrap a program instrumented with [`instrument_cbi`]; its
/// `RunConfig::sample_mean` sets the sampling rate (100 ⇒ 1/100).
pub fn cbi(
    runner: &Runner,
    failing: &[Workload],
    passing: &[Workload],
    spec: &FailureSpec,
    config: &CbiConfig,
) -> CbiDiagnosis {
    let mut model = CbiModel::new();
    let mut failing_used = 0;
    let mut success_used = 0;

    let replay = |workloads: &[Workload],
                  want_failure: bool,
                  needed: usize,
                  used: &mut usize,
                  model: &mut CbiModel<BranchPredicate>| {
        let mut i = 0usize;
        while *used < needed && i < config.max_runs && !workloads.is_empty() {
            let base = &workloads[i % workloads.len()];
            let lap = (i / workloads.len()) as u64;
            let mut w = base.clone();
            w.seed = base.seed.wrapping_add(lap.wrapping_mul(0x9E37_79B9));
            // Vary the sampling stream run to run, as wall-clock skew does
            // in a real deployment.
            i += 1;
            let (report, class) = runner.run_classified_with_sample_seed(&w, spec, i as u64);
            match (class, want_failure) {
                (RunClass::TargetFailure, true) => {
                    model.add_run(true, run_observations(&report));
                    *used += 1;
                }
                (RunClass::Success, false) => {
                    model.add_run(false, run_observations(&report));
                    *used += 1;
                }
                _ => {}
            }
        }
    };

    replay(
        failing,
        true,
        config.failing_runs,
        &mut failing_used,
        &mut model,
    );
    replay(
        passing,
        false,
        config.successful_runs,
        &mut success_used,
        &mut model,
    );

    CbiDiagnosis {
        ranked: model.rank(),
        failing_runs: failing_used,
        successful_runs: success_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ids::LogSiteId;
    use stm_machine::interp::{Machine, RunConfig};
    use stm_machine::ir::BinOp;

    fn guarded_program() -> (Program, LogSiteId, BranchId) {
        let mut pb = ProgramBuilder::new("p");
        let main = pb.declare_function("main");
        let site;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            let x = f.read_input(0);
            let neg = f.bin(BinOp::Lt, x, 0);
            f.at(10);
            f.br(neg, err, ok);
            f.set_block(err);
            site = f.log_error("negative");
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.output(x);
            f.ret(None);
            f.finish();
        }
        let p = pb.finish(main);
        let root = p.branches[0].id;
        (p, site, root)
    }

    #[test]
    fn instrumentation_adds_one_probe_per_branch() {
        let (p, _, _) = guarded_program();
        let out = instrument_cbi(&p);
        let probes = out
            .functions
            .iter()
            .flat_map(|f| &f.blocks)
            .flat_map(|b| &b.stmts)
            .filter(|s| matches!(s.instr, Instr::Sample { .. }))
            .count();
        assert_eq!(probes, p.branches.len());
    }

    #[test]
    fn cbi_finds_root_with_enough_runs_and_dense_sampling() {
        let (p, site, root) = guarded_program();
        let machine = Machine::new(instrument_cbi(&p));
        // sample_mean 1 = always-on probes: isolates the statistics from
        // the sampling-miss effect (tested separately below).
        let runner = Runner::new(machine).with_run_config(RunConfig {
            sample_mean: 1,
            ..RunConfig::default()
        });
        let failing: Vec<Workload> = (0..4).map(|i| Workload::new(vec![-1 - i])).collect();
        let passing: Vec<Workload> = (0..4).map(|i| Workload::new(vec![1 + i])).collect();
        let cfg = CbiConfig {
            failing_runs: 40,
            successful_runs: 40,
            max_runs: 200,
        };
        let d = cbi(
            &runner,
            &failing,
            &passing,
            &FailureSpec::ErrorLogAt(site),
            &cfg,
        );
        assert_eq!(d.failing_runs, 40);
        let top = d.top().expect("a ranked predicate");
        assert_eq!(top.predicate.branch, root);
        assert!(top.predicate.taken);
    }

    #[test]
    fn sparse_sampling_misses_rare_predicates_with_few_runs() {
        let (p, site, root) = guarded_program();
        let machine = Machine::new(instrument_cbi(&p));
        // 1/100 sampling and the branch executes once per run: with only a
        // handful of runs the probe almost surely never fires.
        let runner = Runner::new(machine).with_run_config(RunConfig {
            sample_mean: 100,
            ..RunConfig::default()
        });
        let failing = vec![Workload::new(vec![-5])];
        let passing = vec![Workload::new(vec![5])];
        let cfg = CbiConfig {
            failing_runs: 5,
            successful_runs: 5,
            max_runs: 50,
        };
        let d = cbi(
            &runner,
            &failing,
            &passing,
            &FailureSpec::ErrorLogAt(site),
            &cfg,
        );
        assert_eq!(d.rank_of_branch(root), None, "{:?}", d.ranked);
    }
}
