//! The CBI statistical-debugging scoring model (Liblit et al., PLDI'05),
//! shared by the CBI, CCI and PBI baselines.
//!
//! Each run reports, for every predicate `P`, whether `P` was *observed*
//! (its site was sampled at least once) and whether it was *true* at least
//! once. The score of `P` combines:
//!
//! * `Failure(P)   = F(P) / (F(P) + S(P))` — crash probability when `P` is
//!   true;
//! * `Context(P)   = F(P obs) / (F(P obs) + S(P obs))` — crash probability
//!   when `P` is merely observed;
//! * `Increase(P)  = Failure(P) − Context(P)` — the predicate's own
//!   predictive contribution (≤ 0 ⇒ discarded);
//! * `Importance(P)` — harmonic mean of `Increase(P)` and a normalized
//!   log-recall term `log(F(P)) / log(NumF)`.

use std::collections::BTreeMap;

/// Per-predicate observation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Counts {
    observed_f: usize,
    observed_s: usize,
    true_f: usize,
    true_s: usize,
}

/// A scored predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredPredicate<P> {
    /// The predicate.
    pub predicate: P,
    /// The ranking key.
    pub importance: f64,
    /// `Failure(P) − Context(P)`.
    pub increase: f64,
    /// `Failure(P)`.
    pub failure_ratio: f64,
    /// `Context(P)`.
    pub context: f64,
    /// Failing runs where the predicate was true.
    pub true_in_failures: usize,
    /// Successful runs where the predicate was true.
    pub true_in_successes: usize,
}

/// Accumulates per-run predicate reports and ranks by Importance.
#[derive(Debug, Clone)]
pub struct CbiModel<P> {
    predicates: BTreeMap<P, Counts>,
    failing_runs: usize,
    successful_runs: usize,
}

impl<P: Ord + Clone> CbiModel<P> {
    /// Creates an empty model.
    pub fn new() -> Self {
        CbiModel {
            predicates: BTreeMap::new(),
            failing_runs: 0,
            successful_runs: 0,
        }
    }

    /// Adds one run's report: for each predicate observed in the run,
    /// whether it was true at least once.
    pub fn add_run(&mut self, is_failure: bool, observations: BTreeMap<P, bool>) {
        if is_failure {
            self.failing_runs += 1;
        } else {
            self.successful_runs += 1;
        }
        for (p, was_true) in observations {
            let c = self.predicates.entry(p).or_default();
            if is_failure {
                c.observed_f += 1;
                if was_true {
                    c.true_f += 1;
                }
            } else {
                c.observed_s += 1;
                if was_true {
                    c.true_s += 1;
                }
            }
        }
    }

    /// Number of failing runs reported.
    pub fn failing_runs(&self) -> usize {
        self.failing_runs
    }

    /// Number of successful runs reported.
    pub fn successful_runs(&self) -> usize {
        self.successful_runs
    }

    /// Ranks predicates with positive `Increase`, best first. Predicates
    /// that never survived sampling in a failing run are unrankable and
    /// absent — the sampling-miss failure mode of the CBI approach.
    pub fn rank(&self) -> Vec<ScoredPredicate<P>> {
        let num_f = self.failing_runs.max(1) as f64;
        let mut out: Vec<ScoredPredicate<P>> = self
            .predicates
            .iter()
            .filter_map(|(p, c)| {
                if c.true_f == 0 {
                    return None;
                }
                let failure = c.true_f as f64 / (c.true_f + c.true_s).max(1) as f64;
                let context = c.observed_f as f64 / (c.observed_f + c.observed_s).max(1) as f64;
                let increase = failure - context;
                if increase <= 0.0 {
                    return None;
                }
                // Liblit'05 keeps a predicate only when Increase is
                // statistically significant: under sparse sampling the
                // per-run truth of an uninformative predicate fluctuates,
                // and without this test noise survives the filter.
                let var_f = failure * (1.0 - failure) / (c.true_f + c.true_s).max(1) as f64;
                let var_c = context * (1.0 - context) / (c.observed_f + c.observed_s).max(1) as f64;
                let se = (var_f + var_c).sqrt();
                if increase <= 1.96 * se {
                    return None;
                }
                let log_recall = if num_f <= 1.0 {
                    1.0
                } else {
                    (c.true_f as f64).max(1.0).ln() / num_f.ln()
                };
                let importance = if increase + log_recall > 0.0 {
                    2.0 * increase * log_recall / (increase + log_recall)
                } else {
                    0.0
                };
                Some(ScoredPredicate {
                    predicate: p.clone(),
                    importance,
                    increase,
                    failure_ratio: failure,
                    context,
                    true_in_failures: c.true_f,
                    true_in_successes: c.true_s,
                })
            })
            .collect();
        out.sort_by(|a, b| {
            b.importance
                .total_cmp(&a.importance)
                .then_with(|| a.predicate.cmp(&b.predicate))
        });
        out
    }

    /// 1-based rank of the first predicate satisfying `pred`.
    pub fn rank_of(
        ranked: &[ScoredPredicate<P>],
        pred: impl FnMut(&ScoredPredicate<P>) -> bool,
    ) -> Option<usize> {
        ranked.iter().position(pred).map(|i| i + 1)
    }
}

impl<P: Ord + Clone> Default for CbiModel<P> {
    fn default() -> Self {
        CbiModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(items: &[(&str, bool)]) -> BTreeMap<String, bool> {
        items.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn deterministic_predictor_gets_top_importance() {
        let mut m = CbiModel::new();
        for _ in 0..100 {
            m.add_run(true, obs(&[("root", true), ("noise", true)]));
            m.add_run(false, obs(&[("root", false), ("noise", true)]));
        }
        let ranked = m.rank();
        assert_eq!(ranked[0].predicate, "root");
        assert!(ranked[0].increase > 0.4);
        // Noise predicts nothing: Increase = 0 → filtered out entirely.
        assert!(ranked.iter().all(|r| r.predicate != "noise"));
    }

    #[test]
    fn unsampled_predicate_is_unrankable() {
        // The root cause was never sampled in a failing run: CBI cannot
        // rank it — the diagnosis-latency problem of §7.2.
        let mut m = CbiModel::new();
        m.add_run(true, obs(&[("noise", true)]));
        m.add_run(false, obs(&[("root", true), ("noise", true)]));
        let ranked = m.rank();
        assert!(ranked.iter().all(|r| r.predicate != "root"));
    }

    #[test]
    fn increase_filters_universal_truths() {
        let mut m = CbiModel::new();
        for _ in 0..10 {
            m.add_run(true, obs(&[("always", true)]));
            m.add_run(false, obs(&[("always", true)]));
        }
        assert!(m.rank().is_empty());
    }

    #[test]
    fn partial_predictor_ranks_below_deterministic_one() {
        let mut m = CbiModel::new();
        for i in 0..100 {
            m.add_run(true, obs(&[("perfect", true), ("partial", i % 2 == 0)]));
            m.add_run(false, obs(&[("perfect", false), ("partial", false)]));
        }
        let ranked = m.rank();
        let perfect = CbiModel::rank_of(&ranked, |r| r.predicate == "perfect").unwrap();
        let partial = CbiModel::rank_of(&ranked, |r| r.predicate == "partial").unwrap();
        assert!(perfect < partial);
    }

    #[test]
    fn run_counters_track() {
        let mut m: CbiModel<String> = CbiModel::new();
        m.add_run(true, BTreeMap::new());
        m.add_run(false, BTreeMap::new());
        m.add_run(false, BTreeMap::new());
        assert_eq!(m.failing_runs(), 1);
        assert_eq!(m.successful_runs(), 2);
    }
}
