//! The PBI baseline: production-run bug isolation via hardware
//! performance-counter sampling of cache-coherence events (Arulraj et al.,
//! ASPLOS'13) — the concurrency-bug comparison point of §7.3.
//!
//! PBI needs **no program instrumentation**: the hardware sampler latches
//! the `(pc, observed MESI state)` of every N-th coherence event; per run,
//! PBI reports which `(location, state)` predicates were observed/true and
//! scores them with the CBI model. Like CBI, its diagnosis latency is set
//! by the sampling rate: rare one-shot predicates need hundreds to
//! thousands of failing runs.

use crate::scoring::{CbiModel, ScoredPredicate};
use std::collections::BTreeMap;
use stm_core::runner::{classify, FailureSpec, RunClass, Workload};
use stm_hardware::{HardwareCtx, HwConfig};
use stm_machine::events::{AccessKind, CoherenceState};
use stm_machine::interp::{Machine, RunConfig};
use stm_machine::ir::SourceLoc;
use stm_machine::sched::SchedPolicy;

/// A PBI predicate: "the access at `loc` observed `state`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoherencePredicate {
    /// Source location of the access instruction.
    pub loc: SourceLoc,
    /// Load or store.
    pub access: AccessKind,
    /// The observed MESI state the predicate asserts.
    pub state: CoherenceState,
}

/// PBI collection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbiConfig {
    /// Failing runs to collect.
    pub failing_runs: usize,
    /// Successful runs to collect.
    pub successful_runs: usize,
    /// Hard cap on runs per phase.
    pub max_runs: usize,
    /// Sampling period of the counter interrupt.
    pub sampling_period: u64,
}

impl Default for PbiConfig {
    fn default() -> Self {
        PbiConfig {
            failing_runs: 1000,
            successful_runs: 1000,
            max_runs: 20_000,
            sampling_period: 100,
        }
    }
}

/// The result of a PBI diagnosis.
#[derive(Debug, Clone)]
pub struct PbiDiagnosis {
    /// Ranked predicates, best first.
    pub ranked: Vec<ScoredPredicate<CoherencePredicate>>,
    /// Failing runs consumed.
    pub failing_runs: usize,
    /// Successful runs consumed.
    pub successful_runs: usize,
}

impl PbiDiagnosis {
    /// 1-based rank of the first predicate at `loc` observing `state`.
    pub fn rank_of_event(&self, loc: SourceLoc, state: CoherenceState) -> Option<usize> {
        CbiModel::rank_of(&self.ranked, |r| {
            r.predicate.loc == loc && r.predicate.state == state
        })
    }

    /// The best predicate.
    pub fn top(&self) -> Option<&ScoredPredicate<CoherencePredicate>> {
        self.ranked.first()
    }
}

/// Runs PBI on an **uninstrumented** machine.
pub fn pbi(
    machine: &Machine,
    failing: &[Workload],
    passing: &[Workload],
    spec: &FailureSpec,
    config: &PbiConfig,
) -> PbiDiagnosis {
    let mut model = CbiModel::new();
    let mut failing_used = 0;
    let mut success_used = 0;
    let layout = machine.layout();

    let replay = |workloads: &[Workload],
                  want_failure: bool,
                  needed: usize,
                  used: &mut usize,
                  model: &mut CbiModel<CoherencePredicate>| {
        let mut i = 0usize;
        while *used < needed && i < config.max_runs && !workloads.is_empty() {
            let base = &workloads[i % workloads.len()];
            let lap = (i / workloads.len()) as u64;
            let mut w = base.clone();
            w.seed = base.seed.wrapping_add(lap.wrapping_mul(0x9E37_79B9));
            let mut hw = HardwareCtx::new(HwConfig {
                sampler_period: Some(config.sampling_period),
                ..HwConfig::default()
            });
            // Vary the interrupt phase run to run, as timing skew does on
            // real machines.
            if let Some(s) = hw.sampler_mut() {
                s.set_countdown((i as u64 % config.sampling_period) + 1);
            }
            i += 1;
            let run_cfg = RunConfig {
                scheduler: SchedPolicy::Random { seed: w.seed },
                ..RunConfig::default()
            };
            let report = machine.run(&w.inputs, &run_cfg, &mut hw);
            let class = classify(machine.program(), &report, &w, spec);
            let wanted = matches!(
                (class, want_failure),
                (RunClass::TargetFailure, true) | (RunClass::Success, false)
            );
            if !wanted {
                continue;
            }
            let mut obs: BTreeMap<CoherencePredicate, bool> = BTreeMap::new();
            for rec in hw.take_coherence_samples() {
                let loc = layout
                    .decode_stmt(rec.pc)
                    .map(|s| s.loc)
                    .unwrap_or(SourceLoc::UNKNOWN);
                for state in [
                    CoherenceState::Invalid,
                    CoherenceState::Shared,
                    CoherenceState::Exclusive,
                    CoherenceState::Modified,
                ] {
                    let pred = CoherencePredicate {
                        loc,
                        access: rec.access,
                        state,
                    };
                    let held = rec.state == state;
                    obs.entry(pred).and_modify(|t| *t |= held).or_insert(held);
                }
            }
            model.add_run(want_failure, obs);
            *used += 1;
        }
    };

    replay(
        failing,
        true,
        config.failing_runs,
        &mut failing_used,
        &mut model,
    );
    replay(
        passing,
        false,
        config.successful_runs,
        &mut success_used,
        &mut model,
    );

    PbiDiagnosis {
        ranked: model.rank(),
        failing_runs: failing_used,
        successful_runs: success_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    /// Thread 2 may null st->table between init and check (the WWR pattern
    /// of Fig. 4); input 0 high ⇒ more yields ⇒ more interleavings fail.
    fn racy_machine() -> (Machine, stm_machine::ids::LogSiteId, SourceLoc) {
        let mut pb = ProgramBuilder::new("racy");
        let table = pb.global("table", 1);
        let main = pb.declare_function("main");
        let killer = pb.declare_function("killer");
        {
            let mut f = pb.build_function(killer, "k.c");
            f.yield_now();
            f.store(table as i64, 0, 0);
            f.ret(None);
            f.finish();
        }
        let site;
        let check_loc: u32;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            f.at(3);
            f.store(table as i64, 0, 777); // init
            let t = f.spawn(killer, &[]);
            f.yield_now();
            f.at(10);
            let v = f.load(table as i64, 0); // the racy check read
                                             // Resolved against the real file table below.
            check_loc = 10;
            let bad = f.bin(BinOp::Eq, v, 0);
            f.br(bad, err, ok);
            f.set_block(err);
            site = f.log_error("out of memory");
            f.join(t);
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.join(t);
            f.output(1);
            f.ret(None);
            f.finish();
        }
        let program = pb.finish(main);
        let file = program.function(main).file;
        let loc = SourceLoc::new(file, check_loc);
        (Machine::new(program), site, loc)
    }

    #[test]
    fn pbi_with_dense_sampling_finds_the_invalid_read() {
        let (machine, site, check_loc) = racy_machine();
        let spec = FailureSpec::ErrorLogAt(site);
        let failing: Vec<Workload> = (0..50)
            .map(|s| Workload::new(vec![]).with_seed(s))
            .collect();
        let passing = failing.clone();
        let cfg = PbiConfig {
            failing_runs: 30,
            successful_runs: 30,
            max_runs: 3000,
            sampling_period: 1, // dense: capability test, not latency test
        };
        let d = pbi(&machine, &failing, &passing, &spec, &cfg);
        assert!(d.failing_runs > 0, "no failing interleaving found");
        let rank = d.rank_of_event(check_loc, CoherenceState::Invalid);
        assert_eq!(rank, Some(1), "{:?}", &d.ranked[..d.ranked.len().min(4)]);
    }

    #[test]
    fn pbi_with_sparse_sampling_needs_more_runs() {
        let (machine, site, check_loc) = racy_machine();
        let spec = FailureSpec::ErrorLogAt(site);
        let failing: Vec<Workload> = (0..20)
            .map(|s| Workload::new(vec![]).with_seed(s))
            .collect();
        let passing = failing.clone();
        let cfg = PbiConfig {
            failing_runs: 5,
            successful_runs: 5,
            max_runs: 500,
            sampling_period: 1000, // sparse: the racy read is almost never latched
        };
        let d = pbi(&machine, &failing, &passing, &spec, &cfg);
        assert_eq!(d.rank_of_event(check_loc, CoherenceState::Invalid), None);
    }
}
