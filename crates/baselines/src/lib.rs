//! # stm-baselines — the statistical-debugging systems the paper compares
//! against
//!
//! * [`cbi`](mod@crate::cbi) — Cooperative Bug Isolation: source-instrumented branch
//!   predicates under 1/100 sampling (Table 6's comparison column);
//! * [`pbi`](mod@crate::pbi) — hardware performance-counter sampling of coherence
//!   predicates (the ASPLOS'13 predecessor system, §7.3);
//! * [`cci`](mod@crate::cci) — software-sampled communication predicates (§7.3);
//! * [`scoring`] — the shared Liblit'05 `Importance` model.
//!
//! All three share the same statistical core but differ in *how* predicates
//! are collected — which is exactly where the diagnosis-latency gap against
//! LBRA/LCRA comes from: a sampled predicate must fire in many failing runs
//! before it becomes rankable, while LBR/LCR capture it deterministically
//! at the first failure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cbi;
pub mod cci;
pub mod pbi;
pub mod scoring;

pub use cbi::{cbi, instrument_cbi, BranchPredicate, CbiConfig, CbiDiagnosis};
pub use cci::{cci, CciConfig, CciDiagnosis, PrevPredicate};
pub use pbi::{pbi, CoherencePredicate, PbiConfig, PbiDiagnosis};
pub use scoring::{CbiModel, ScoredPredicate};
