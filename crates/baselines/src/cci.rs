//! The CCI baseline: Cooperative Concurrency-bug Isolation (Jin et al.,
//! OOPSLA'10), using software-sampled *communication* predicates.
//!
//! CCI-Prev asks, at every memory access: "was the previous access to this
//! location performed by a different thread?" — evaluated under sampling
//! because the bookkeeping is expensive (the original system costs up to
//! ~10× at full rate, §5.3/§7.3). We model the bookkeeping with a
//! [`Hardware`]-side tracker so the predicate stream is exact, and apply
//! the sampling at collection time.

use crate::scoring::{CbiModel, ScoredPredicate};
use std::collections::{BTreeMap, HashMap};
use stm_core::runner::{classify, FailureSpec, RunClass, Workload};
use stm_machine::events::{AccessEvent, BranchEvent, CtlResponse, Hardware, HwCtlOp};
use stm_machine::ids::{CoreId, ThreadId};
use stm_machine::interp::{Machine, RunConfig};
use stm_machine::ir::SourceLoc;
use stm_machine::rng::SplitMix64;
use stm_machine::sched::SchedPolicy;

/// A CCI-Prev predicate: "at `loc`, the previous access to the same
/// location was by a different thread" (`remote = true`) or by the same
/// thread (`remote = false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PrevPredicate {
    /// Source location of the access.
    pub loc: SourceLoc,
    /// Whether the previous access came from another thread.
    pub remote: bool,
}

/// The CCI bookkeeping: last accessor per address, with sampled predicate
/// collection.
#[derive(Debug)]
struct CciTracker {
    last_accessor: HashMap<u64, ThreadId>,
    rng: SplitMix64,
    rate: u32,
    samples: Vec<(u64, bool)>, // (pc, remote)
}

impl CciTracker {
    fn new(rate: u32, seed: u64) -> Self {
        CciTracker {
            last_accessor: HashMap::new(),
            rng: SplitMix64::new(seed),
            rate: rate.max(1),
            samples: Vec::new(),
        }
    }
}

impl Hardware for CciTracker {
    fn on_branch(&mut self, _core: CoreId, _ev: BranchEvent) {}

    fn on_access(&mut self, _core: CoreId, thread: ThreadId, ev: AccessEvent) {
        let prev = self.last_accessor.insert(ev.addr, thread);
        if self.rng.next_below(self.rate as u64) == 0 {
            if let Some(prev) = prev {
                self.samples.push((ev.pc, prev != thread));
            }
        }
    }

    fn ctl(&mut self, _core: CoreId, _thread: ThreadId, _op: HwCtlOp) -> CtlResponse {
        CtlResponse::Done
    }
}

/// CCI collection parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CciConfig {
    /// Failing runs to collect.
    pub failing_runs: usize,
    /// Successful runs to collect.
    pub successful_runs: usize,
    /// Hard cap on runs per phase.
    pub max_runs: usize,
    /// Sampling rate denominator (100 ⇒ 1/100).
    pub sampling_rate: u32,
}

impl Default for CciConfig {
    fn default() -> Self {
        CciConfig {
            failing_runs: 1000,
            successful_runs: 1000,
            max_runs: 20_000,
            sampling_rate: 100,
        }
    }
}

/// The result of a CCI diagnosis.
#[derive(Debug, Clone)]
pub struct CciDiagnosis {
    /// Ranked predicates, best first.
    pub ranked: Vec<ScoredPredicate<PrevPredicate>>,
    /// Failing runs consumed.
    pub failing_runs: usize,
    /// Successful runs consumed.
    pub successful_runs: usize,
}

impl CciDiagnosis {
    /// 1-based rank of the first remote-communication predicate at `loc`.
    pub fn rank_of_remote(&self, loc: SourceLoc) -> Option<usize> {
        CbiModel::rank_of(&self.ranked, |r| {
            r.predicate.loc == loc && r.predicate.remote
        })
    }

    /// The best predicate.
    pub fn top(&self) -> Option<&ScoredPredicate<PrevPredicate>> {
        self.ranked.first()
    }
}

/// Runs CCI on an uninstrumented machine.
pub fn cci(
    machine: &Machine,
    failing: &[Workload],
    passing: &[Workload],
    spec: &FailureSpec,
    config: &CciConfig,
) -> CciDiagnosis {
    let mut model = CbiModel::new();
    let mut failing_used = 0;
    let mut success_used = 0;
    let layout = machine.layout();

    let replay = |workloads: &[Workload],
                  want_failure: bool,
                  needed: usize,
                  used: &mut usize,
                  model: &mut CbiModel<PrevPredicate>| {
        let mut i = 0usize;
        while *used < needed && i < config.max_runs && !workloads.is_empty() {
            let base = &workloads[i % workloads.len()];
            let lap = (i / workloads.len()) as u64;
            let mut w = base.clone();
            w.seed = base.seed.wrapping_add(lap.wrapping_mul(0x9E37_79B9));
            let mut hw = CciTracker::new(config.sampling_rate, 0xCC1 + i as u64);
            i += 1;
            let run_cfg = RunConfig {
                scheduler: SchedPolicy::Random { seed: w.seed },
                ..RunConfig::default()
            };
            let report = machine.run(&w.inputs, &run_cfg, &mut hw);
            let class = classify(machine.program(), &report, &w, spec);
            let wanted = matches!(
                (class, want_failure),
                (RunClass::TargetFailure, true) | (RunClass::Success, false)
            );
            if !wanted {
                continue;
            }
            let mut obs: BTreeMap<PrevPredicate, bool> = BTreeMap::new();
            for (pc, remote) in hw.samples.drain(..) {
                let loc = layout
                    .decode_stmt(pc)
                    .map(|s| s.loc)
                    .unwrap_or(SourceLoc::UNKNOWN);
                for value in [true, false] {
                    let pred = PrevPredicate { loc, remote: value };
                    let held = remote == value;
                    obs.entry(pred).and_modify(|t| *t |= held).or_insert(held);
                }
            }
            model.add_run(want_failure, obs);
            *used += 1;
        }
    };

    replay(
        failing,
        true,
        config.failing_runs,
        &mut failing_used,
        &mut model,
    );
    replay(
        passing,
        false,
        config.successful_runs,
        &mut success_used,
        &mut model,
    );

    CciDiagnosis {
        ranked: model.rank(),
        failing_runs: failing_used,
        successful_runs: success_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stm_machine::builder::ProgramBuilder;
    use stm_machine::ir::BinOp;

    /// Same racy check-after-init pattern as the PBI test: in failing
    /// interleavings, the check read communicates with the killer thread.
    fn racy_machine() -> (Machine, stm_machine::ids::LogSiteId, SourceLoc) {
        let mut pb = ProgramBuilder::new("racy");
        let table = pb.global("table", 1);
        let main = pb.declare_function("main");
        let killer = pb.declare_function("killer");
        {
            let mut f = pb.build_function(killer, "k.c");
            f.yield_now();
            f.store(table as i64, 0, 0);
            f.ret(None);
            f.finish();
        }
        let site;
        let check_loc: u32;
        {
            let mut f = pb.build_function(main, "m.c");
            let err = f.new_block();
            let ok = f.new_block();
            f.at(3);
            f.store(table as i64, 0, 777);
            let t = f.spawn(killer, &[]);
            f.yield_now();
            f.at(10);
            let v = f.load(table as i64, 0);
            // Resolved against the real file table below.
            check_loc = 10;
            let bad = f.bin(BinOp::Eq, v, 0);
            f.br(bad, err, ok);
            f.set_block(err);
            site = f.log_error("out of memory");
            f.join(t);
            f.exit(1);
            f.ret(None);
            f.set_block(ok);
            f.join(t);
            f.output(1);
            f.ret(None);
            f.finish();
        }
        let program = pb.finish(main);
        let file = program.function(main).file;
        let loc = SourceLoc::new(file, check_loc);
        (Machine::new(program), site, loc)
    }

    #[test]
    fn cci_dense_sampling_finds_remote_communication() {
        let (machine, site, check_loc) = racy_machine();
        let spec = FailureSpec::ErrorLogAt(site);
        let workloads: Vec<Workload> = (0..50)
            .map(|s| Workload::new(vec![]).with_seed(s))
            .collect();
        let cfg = CciConfig {
            failing_runs: 30,
            successful_runs: 30,
            max_runs: 3000,
            sampling_rate: 1,
        };
        let d = cci(&machine, &workloads, &workloads, &spec, &cfg);
        assert!(d.failing_runs > 0);
        let rank = d.rank_of_remote(check_loc).expect("predicate ranked");
        assert!(
            rank <= 2,
            "rank {rank}: {:?}",
            &d.ranked[..d.ranked.len().min(4)]
        );
    }

    #[test]
    fn cci_sparse_sampling_misses_with_few_runs() {
        let (machine, site, check_loc) = racy_machine();
        let spec = FailureSpec::ErrorLogAt(site);
        let workloads: Vec<Workload> = (0..20)
            .map(|s| Workload::new(vec![]).with_seed(s))
            .collect();
        let cfg = CciConfig {
            failing_runs: 4,
            successful_runs: 4,
            max_runs: 400,
            sampling_rate: 10_000,
        };
        let d = cci(&machine, &workloads, &workloads, &spec, &cfg);
        assert_eq!(d.rank_of_remote(check_loc), None);
    }
}
