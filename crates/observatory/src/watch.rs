//! Client-side pieces of the status board: a minimal HTTP/1.1 GET,
//! a Prometheus text parser, and the one-screen board renderer used
//! by the `stm_watch` binary.
//!
//! The parser and renderer are pure functions over strings so the
//! board can be unit-tested without a live server.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use stm_telemetry::json::Json;

/// Fetches `path` from `addr` and returns the response body.
///
/// Deliberately tiny: one request per connection (`Connection: close`),
/// no redirects, no chunked decoding — the observatory server sends
/// plain `Content-Length` bodies.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response had no header/body separator",
        )),
    }
}

/// Parses Prometheus text exposition into `series name -> value`.
///
/// Comment (`#`) and blank lines are skipped; the series name keeps
/// its label set verbatim (`..._bucket{le="1"}` stays one key).
pub fn parse_prometheus(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name, value)) = line.rsplit_once(' ') {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(name.to_string(), v);
            }
        }
    }
    out
}

/// One scrape: the parsed `/metrics` series plus the `/health` report,
/// optionally joined by the `/diagnosis` convergence document.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Parsed `/metrics` series.
    pub metrics: BTreeMap<String, f64>,
    /// Parsed `/health` JSON.
    pub health: Json,
    /// Parsed `/diagnosis` JSON, when the scrape fetched it.
    pub diagnosis: Option<Json>,
}

impl Sample {
    /// Parses raw endpoint bodies into a sample. Fails when the health
    /// body is not valid JSON.
    pub fn parse(metrics_body: &str, health_body: &str) -> Result<Sample, String> {
        Ok(Sample {
            metrics: parse_prometheus(metrics_body),
            health: Json::parse(health_body.trim()).map_err(|e| format!("{e:?}"))?,
            diagnosis: None,
        })
    }

    /// Attaches a `/diagnosis` body to the sample; a body that fails to
    /// parse is an error (the endpoint always serves valid JSON).
    pub fn with_diagnosis(mut self, diagnosis_body: &str) -> Result<Sample, String> {
        self.diagnosis = Some(Json::parse(diagnosis_body.trim()).map_err(|e| format!("{e:?}"))?);
        Ok(self)
    }
}

fn health_str<'a>(health: &'a Json, key: &str) -> &'a str {
    health.get(key).and_then(Json::as_str).unwrap_or("?")
}

fn observed(health: &Json, key: &str) -> Option<f64> {
    health.get("observed")?.get(key)?.as_f64()
}

/// Renders the one-screen status board.
///
/// `prev` is the previous sample plus the seconds elapsed since it was
/// taken; when present, every monotonic series (`_total` counters and
/// histogram `_count`s) gains a per-second rate column.
pub fn render_board(cur: &Sample, prev: Option<(&Sample, f64)>) -> String {
    let mut out = String::new();
    let state = health_str(&cur.health, "state");
    let raw = health_str(&cur.health, "raw");
    out.push_str(&format!("stm observatory — health: {state}"));
    if raw != state {
        out.push_str(&format!(" (raw: {raw})"));
    }
    out.push('\n');
    if let Some(Json::Arr(reasons)) = cur.health.get("reasons") {
        for r in reasons {
            if let Some(r) = r.as_str() {
                out.push_str(&format!("  reason: {r}\n"));
            }
        }
    }
    let gauge_rows: [(&str, &str); 4] = [
        ("queue depth", "queue_depth"),
        ("failure streak", "failure_streak"),
        ("workers busy", "workers_busy"),
        ("workers", "workers"),
    ];
    for (label, key) in gauge_rows {
        let v = observed(&cur.health, key).unwrap_or(0.0);
        out.push_str(&format!("  {label:<16} {v:>12.0}\n"));
    }
    let rps =
        observed(&cur.health, "runs_per_sec").map_or("n/a".to_string(), |v| format!("{v:.1}"));
    out.push_str(&format!("  {:<16} {rps:>12}\n", "runs/sec"));
    if let Some(d) = &cur.diagnosis {
        out.push_str(&render_convergence(d));
        if let Some(fleet) = d.get("fleet") {
            out.push_str(&render_fleet(fleet));
        }
    }
    out.push_str("\n  series                                     value       per-sec\n");
    for (name, &v) in &cur.metrics {
        let monotonic = name.ends_with("_total") || name.ends_with("_count");
        if !monotonic {
            continue;
        }
        let rate = prev.and_then(|(p, secs)| {
            let before = p.metrics.get(name).copied()?;
            (secs > 0.0).then(|| (v - before).max(0.0) / secs)
        });
        let rate = rate.map_or("-".to_string(), |r| format!("{r:.1}"));
        out.push_str(&format!("  {name:<40} {v:>11.0} {rate:>13}\n"));
    }
    out
}

/// Renders the convergence panel from a `/diagnosis` document: the
/// verdict line, the ingest/churn/streak gauges, and the current top
/// predictors with their scores.
fn render_convergence(d: &Json) -> String {
    let mut out = String::new();
    let verdict = d.get("verdict").and_then(Json::as_str).unwrap_or("?");
    out.push_str(&format!("\n  diagnosis — {verdict}\n"));
    if verdict == "idle" {
        return out;
    }
    let num = |key: &str| d.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    for (label, key) in [
        ("witnesses", "witnesses_ingested"),
        ("rank churn", "rank_churn"),
        ("top-1 stable for", "top1_stable_for"),
    ] {
        out.push_str(&format!("  {label:<16} {:>12.0}\n", num(key)));
    }
    if let Some(Json::Arr(top)) = d.get("top") {
        for (i, p) in top.iter().take(5).enumerate() {
            let name = p.get("predictor").and_then(Json::as_str).unwrap_or("?");
            let score = p.get("score").and_then(Json::as_f64).unwrap_or(0.0);
            out.push_str(&format!("    #{:<2} {score:.4}  {name}\n", i + 1));
        }
    }
    out
}

/// Renders the fleet panel from the `"fleet"` sub-document the daemon
/// publishes: one row per shard with its live verdict and backpressure
/// gauges.
///
/// Robust by construction against shards the renderer has never seen:
/// a shard entry with no `verdict` (or one that is not even an object)
/// renders as `warming` with zeroed gauges — a brand-new shard must
/// never panic the board.
fn render_fleet(f: &Json) -> String {
    let mut out = String::new();
    let shed_total = f.get("shed_total").and_then(Json::as_f64).unwrap_or(0.0);
    out.push_str(&format!("\n  fleet — shed total {shed_total:.0}\n"));
    let Some(Json::Obj(shards)) = f.get("shards") else {
        out.push_str("    (no shards)\n");
        return out;
    };
    if shards.is_empty() {
        out.push_str("    (no shards)\n");
    }
    for (name, entry) in shards {
        let verdict = entry
            .get("verdict")
            .and_then(Json::as_str)
            .unwrap_or("warming");
        let num = |key: &str| entry.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "    {name:<18} {verdict:<10} witnesses {:>5.0}  queue {:>4.0}  shed {:>5.0}\n",
            num("witnesses"),
            num("queue_depth"),
            num("shed"),
        ));
        out.push_str(&format!("      chain: {}\n", render_chain_line(entry)));
    }
    out
}

/// One-line storyline of a shard's causal chain: the link events joined
/// root-cause → … → failure. A shard with no chain yet (missing key,
/// `null`, or no links) renders as `warming` — same fallback as the
/// verdict column, never a panic or garbage.
fn render_chain_line(entry: &Json) -> String {
    let links = entry
        .get("chain")
        .and_then(|c| c.get("links"))
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    if links.is_empty() {
        return "warming".to_string();
    }
    links
        .iter()
        .map(|l| l.get("event").and_then(Json::as_str).unwrap_or("?"))
        .collect::<Vec<_>>()
        .join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const METRICS: &str = "\
# TYPE stm_engine_runs_total counter
stm_engine_runs_total 120
# TYPE stm_engine_queue_depth gauge
stm_engine_queue_depth 3
stm_engine_queue_wait_us_bucket{le=\"1\"} 5
stm_engine_queue_wait_us_count 40
";

    const HEALTH: &str = r#"{"state":"degraded","raw":"degraded","reasons":["queue depth 3 exceeds 2"],"observed":{"queue_depth":3,"failure_streak":0,"runs_per_sec":60.0,"workers_busy":2,"workers":4},"last_cycle_failed":false,"seq":7,"transitions":[]}"#;

    #[test]
    fn prometheus_text_parses_to_series_map() {
        let m = parse_prometheus(METRICS);
        assert_eq!(m.get("stm_engine_runs_total"), Some(&120.0));
        assert_eq!(m.get("stm_engine_queue_depth"), Some(&3.0));
        assert_eq!(
            m.get("stm_engine_queue_wait_us_bucket{le=\"1\"}"),
            Some(&5.0),
            "labelled series keep their labels"
        );
        assert!(!m.contains_key("# TYPE stm_engine_runs_total counter"));
    }

    #[test]
    fn board_shows_health_gauges_and_rates() {
        let prev = Sample::parse(
            "stm_engine_runs_total 100\nstm_engine_queue_wait_us_count 20\n",
            HEALTH,
        )
        .unwrap();
        let cur = Sample::parse(METRICS, HEALTH).unwrap();
        let board = render_board(&cur, Some((&prev, 2.0)));
        assert!(board.contains("health: degraded"), "{board}");
        assert!(board.contains("reason: queue depth 3 exceeds 2"), "{board}");
        assert!(board.contains("queue depth"), "{board}");
        assert!(board.contains("60.0"), "runs/sec from health: {board}");
        // (120 - 100) / 2s = 10.0 runs/sec for the counter row.
        assert!(board.contains("10.0"), "{board}");
        // (40 - 20) / 2s = 10.0 as well; the span-count row must exist.
        assert!(board.contains("stm_engine_queue_wait_us_count"), "{board}");
        // Gauges are not rate rows.
        assert!(!board.contains("stm_engine_queue_depth  "), "{board}");
    }

    const DIAGNOSIS: &str = r#"{"verdict":"collecting","witnesses_ingested":14,"rank_churn":2,"top1_stable_for":6,"top":[{"predictor":"b12:taken","score":0.9231,"precision":0.9,"recall":0.95},{"predictor":"!L3:S:read","score":0.5,"precision":0.5,"recall":0.5}]}"#;

    #[test]
    fn board_renders_convergence_panel_when_diagnosis_present() {
        let cur = Sample::parse(METRICS, HEALTH)
            .unwrap()
            .with_diagnosis(DIAGNOSIS)
            .unwrap();
        let board = render_board(&cur, None);
        assert!(board.contains("diagnosis — collecting"), "{board}");
        assert!(board.contains("witnesses"), "{board}");
        assert!(board.contains("top-1 stable for"), "{board}");
        assert!(board.contains("#1  0.9231  b12:taken"), "{board}");
        assert!(board.contains("!L3:S:read"), "{board}");
    }

    const FLEET_DIAGNOSIS: &str = r#"{"verdict":"idle","fleet":{"shed_total":12,"shards":{"apache4-0":{"verdict":"converged","witnesses":40,"queue_depth":0,"shed":12,"chain":{"kind":"lbr","links":[{"role":"root-cause","event":"br3=true"},{"role":"failure","event":"br9=false"}]}},"sort-0":{"verdict":"collecting","witnesses":9,"queue_depth":3,"shed":0,"chain":null},"brand-new":{},"weird":"not-an-object"}}}"#;

    #[test]
    fn board_renders_fleet_panel_with_warming_fallback() {
        let cur = Sample::parse(METRICS, HEALTH)
            .unwrap()
            .with_diagnosis(FLEET_DIAGNOSIS)
            .unwrap();
        let board = render_board(&cur, None);
        assert!(board.contains("fleet — shed total 12"), "{board}");
        assert!(board.contains("apache4-0"), "{board}");
        assert!(board.contains("converged"), "{board}");
        assert!(board.contains("collecting"), "{board}");
        // Unknown/new shards render as warming — no verdict field, no
        // panic, including a shard entry that is not even an object.
        let new_row = board
            .lines()
            .find(|l| l.contains("brand-new"))
            .expect("brand-new shard row");
        assert!(new_row.contains("warming"), "{new_row}");
        let weird_row = board
            .lines()
            .find(|l| l.contains("weird"))
            .expect("weird shard row");
        assert!(weird_row.contains("warming"), "{weird_row}");
    }

    #[test]
    fn fleet_panel_renders_chain_storyline_with_warming_fallback() {
        let cur = Sample::parse(METRICS, HEALTH)
            .unwrap()
            .with_diagnosis(FLEET_DIAGNOSIS)
            .unwrap();
        let board = render_board(&cur, None);
        // A shard with a chain shows the link events as a storyline.
        assert!(board.contains("chain: br3=true → br9=false"), "{board}");
        // Shards with a null chain, an empty entry, or a non-object
        // entry all fall back to warming — never a panic or garbage.
        let warming_chains = board
            .lines()
            .filter(|l| l.trim() == "chain: warming")
            .count();
        assert_eq!(warming_chains, 3, "{board}");
    }

    #[test]
    fn fleet_panel_handles_missing_or_empty_shards() {
        let empty = render_fleet(&Json::parse(r#"{"shed_total":0,"shards":{}}"#).unwrap());
        assert!(empty.contains("(no shards)"), "{empty}");
        let missing = render_fleet(&Json::parse(r#"{"shed_total":3}"#).unwrap());
        assert!(missing.contains("(no shards)"), "{missing}");
        assert!(missing.contains("shed total 3"), "{missing}");
    }

    #[test]
    fn board_skips_convergence_panel_without_diagnosis() {
        let cur = Sample::parse(METRICS, HEALTH).unwrap();
        let board = render_board(&cur, None);
        assert!(!board.contains("diagnosis —"), "{board}");
    }

    #[test]
    fn idle_diagnosis_renders_just_the_verdict_line() {
        let cur = Sample::parse(METRICS, HEALTH)
            .unwrap()
            .with_diagnosis(r#"{"verdict":"idle"}"#)
            .unwrap();
        let board = render_board(&cur, None);
        assert!(board.contains("diagnosis — idle"), "{board}");
        assert!(!board.contains("top-1 stable for"), "{board}");
    }

    #[test]
    fn malformed_diagnosis_body_is_an_error() {
        let err = Sample::parse(METRICS, HEALTH)
            .unwrap()
            .with_diagnosis("not json");
        assert!(err.is_err());
    }

    #[test]
    fn board_without_history_shows_dashes_for_rates() {
        let cur = Sample::parse(METRICS, HEALTH).unwrap();
        let board = render_board(&cur, None);
        assert!(board.contains("stm_engine_runs_total"), "{board}");
        let rate_line = board
            .lines()
            .find(|l| l.contains("stm_engine_runs_total"))
            .unwrap();
        assert!(rate_line.trim_end().ends_with('-'), "{rate_line}");
    }
}
