//! The health state machine: `healthy / degraded / failing` derived from
//! the live telemetry registry.
//!
//! The model follows the memory-ops runbook shape the ROADMAP's streaming
//! daemon commits to: a pipeline is **failing** once its consecutive
//! failure streak reaches the failing threshold (default 3), **degraded**
//! on any single failure, a saturated queue, or collapsed throughput
//! while work is queued, and **healthy** otherwise. Escalation is
//! immediate; de-escalation requires [`HealthThresholds::recovery_observations`]
//! consecutive calmer observations (hysteresis), so one clean poll never
//! masks a flapping pipeline.
//!
//! All thresholds are explicit, inspectable fields — no magic numbers
//! buried in match arms — and every transition records its reasons.

use stm_telemetry::json::Json;
use stm_telemetry::MetricsSnapshot;

/// Pipeline health, ordered by severity (`Healthy < Degraded < Failing`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthState {
    /// Quotas filling, queue bounded, no recent session failures.
    Healthy,
    /// Continuing, but an operator should look: a session failed or
    /// lost profiles, the queue is saturated, or throughput collapsed.
    Degraded,
    /// Consecutive session failures reached the failing threshold; stop
    /// feeding work and investigate (see RUNBOOK.md).
    Failing,
}

impl HealthState {
    /// The lowercase name used in the JSON snapshot.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Failing => "failing",
        }
    }
}

/// Explicit transition thresholds. Every comparison the state machine
/// makes reads one of these fields.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthThresholds {
    /// `failure_streak >= degraded_streak` → at least [`HealthState::Degraded`].
    pub degraded_streak: i64,
    /// `failure_streak >= failing_streak` → [`HealthState::Failing`]
    /// (the runbook's "3 consecutive failed cycles" rule).
    pub failing_streak: i64,
    /// `queue_depth > max_queue_depth` → at least degraded: workers are
    /// not keeping up with dispatch.
    pub max_queue_depth: i64,
    /// With work queued, `runs_per_sec < min_runs_per_sec` → at least
    /// degraded: throughput collapsed while jobs wait.
    pub min_runs_per_sec: f64,
    /// Consecutive observations strictly calmer than the current state
    /// required before de-escalating (hysteresis).
    pub recovery_observations: u32,
}

impl Default for HealthThresholds {
    fn default() -> Self {
        HealthThresholds {
            degraded_streak: 1,
            failing_streak: 3,
            max_queue_depth: 64,
            min_runs_per_sec: 1.0,
            recovery_observations: 2,
        }
    }
}

/// One poll of the pipeline: the gauge/counter-derived inputs the state
/// machine classifies. Plain data, so tests drive the machine without a
/// live registry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// `engine.queue_depth` gauge: jobs dispatched but not yet consumed.
    pub queue_depth: i64,
    /// `engine.failure_streak` gauge: consecutive sessions that errored
    /// or lost profiles (`CtlResponse::Lost`), reset by a clean session.
    pub failure_streak: i64,
    /// Runs per second derived from the `engine.runs` counter delta
    /// between polls; `None` on the first poll.
    pub runs_per_sec: Option<f64>,
    /// `engine.workers_busy` gauge: workers currently executing a job.
    pub workers_busy: i64,
    /// `engine.workers` gauge: live pool size (0 outside a session).
    pub workers: i64,
}

impl Observation {
    /// Builds an observation from a registry snapshot plus the poll-rate
    /// context the snapshot alone cannot carry.
    pub fn from_snapshot(m: &MetricsSnapshot, runs_per_sec: Option<f64>) -> Observation {
        Observation {
            queue_depth: m.gauge("engine.queue_depth").unwrap_or(0),
            failure_streak: m.gauge("engine.failure_streak").unwrap_or(0),
            runs_per_sec,
            workers_busy: m.gauge("engine.workers_busy").unwrap_or(0),
            workers: m.gauge("engine.workers").unwrap_or(0),
        }
    }

    fn to_json(self) -> Json {
        Json::obj([
            ("queue_depth", Json::Num(self.queue_depth as f64)),
            ("failure_streak", Json::Num(self.failure_streak as f64)),
            (
                "runs_per_sec",
                self.runs_per_sec.map_or(Json::Null, Json::Num),
            ),
            ("workers_busy", Json::Num(self.workers_busy as f64)),
            ("workers", Json::Num(self.workers as f64)),
        ])
    }
}

/// One recorded state change.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// 1-based observation number at which the change took effect.
    pub seq: u64,
    /// State before.
    pub from: HealthState,
    /// State after.
    pub to: HealthState,
    /// Why (the triggering observation's reasons; empty on recovery).
    pub reasons: Vec<String>,
}

impl Transition {
    fn to_json(&self) -> Json {
        Json::obj([
            ("seq", Json::from(self.seq)),
            ("from", Json::from(self.from.as_str())),
            ("to", Json::from(self.to.as_str())),
            (
                "reasons",
                Json::Arr(
                    self.reasons
                        .iter()
                        .map(|r| Json::from(r.as_str()))
                        .collect(),
                ),
            ),
        ])
    }
}

/// How many recent transitions the JSON snapshot carries.
const SNAPSHOT_TRANSITIONS: usize = 8;

/// The result of one [`HealthEngine::observe`]: the machine's state plus
/// this observation's raw severity and reasons.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The state machine's state (hysteresis applied).
    pub state: HealthState,
    /// This observation's severity alone, before hysteresis.
    pub raw: HealthState,
    /// Why `raw` is above healthy; empty for a clean observation.
    pub reasons: Vec<String>,
    /// The classified inputs.
    pub observation: Observation,
    /// 1-based observation number.
    pub seq: u64,
    /// Most recent transitions, oldest first (at most 8).
    pub transitions: Vec<Transition>,
}

impl HealthReport {
    /// The `/health` endpoint's JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("state", Json::from(self.state.as_str())),
            ("raw", Json::from(self.raw.as_str())),
            (
                "reasons",
                Json::Arr(
                    self.reasons
                        .iter()
                        .map(|r| Json::from(r.as_str()))
                        .collect(),
                ),
            ),
            ("observed", self.observation.to_json()),
            (
                "last_cycle_failed",
                Json::Bool(self.observation.failure_streak > 0),
            ),
            ("seq", Json::from(self.seq)),
            (
                "transitions",
                Json::Arr(self.transitions.iter().map(Transition::to_json).collect()),
            ),
        ])
    }
}

/// The stateful health model: feed it [`Observation`]s, read the state.
#[derive(Debug)]
pub struct HealthEngine {
    thresholds: HealthThresholds,
    state: HealthState,
    /// Consecutive observations strictly calmer than `state`.
    calm: u32,
    seq: u64,
    transitions: Vec<Transition>,
}

impl Default for HealthEngine {
    fn default() -> Self {
        HealthEngine::new(HealthThresholds::default())
    }
}

impl HealthEngine {
    /// A fresh engine (state [`HealthState::Healthy`]) with the given
    /// thresholds.
    pub fn new(thresholds: HealthThresholds) -> HealthEngine {
        HealthEngine {
            thresholds,
            state: HealthState::Healthy,
            calm: 0,
            seq: 0,
            transitions: Vec::new(),
        }
    }

    /// The thresholds in force.
    pub fn thresholds(&self) -> &HealthThresholds {
        &self.thresholds
    }

    /// The current state.
    pub fn state(&self) -> HealthState {
        self.state
    }

    /// Every transition recorded so far, oldest first.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Classifies one observation in isolation: its severity and the
    /// reasons. Pure — no state machine involved.
    pub fn classify(&self, obs: &Observation) -> (HealthState, Vec<String>) {
        let t = &self.thresholds;
        let mut state = HealthState::Healthy;
        let mut reasons = Vec::new();
        if obs.failure_streak >= t.failing_streak {
            state = HealthState::Failing;
            reasons.push(format!(
                "failure_streak {} reached failing threshold {}",
                obs.failure_streak, t.failing_streak
            ));
        } else if obs.failure_streak >= t.degraded_streak {
            state = HealthState::Degraded;
            reasons.push(format!(
                "failure_streak {} reached degraded threshold {}",
                obs.failure_streak, t.degraded_streak
            ));
        }
        if obs.queue_depth > t.max_queue_depth {
            state = state.max(HealthState::Degraded);
            reasons.push(format!(
                "queue_depth {} above limit {}",
                obs.queue_depth, t.max_queue_depth
            ));
        }
        if let Some(rps) = obs.runs_per_sec {
            if obs.queue_depth > 0 && rps < t.min_runs_per_sec {
                state = state.max(HealthState::Degraded);
                reasons.push(format!(
                    "runs_per_sec {rps:.2} below floor {} with {} jobs queued",
                    t.min_runs_per_sec, obs.queue_depth
                ));
            }
        }
        (state, reasons)
    }

    /// Feeds one observation through the state machine and reports.
    ///
    /// Escalation (raw severity above the current state) takes effect
    /// immediately. De-escalation waits for
    /// [`HealthThresholds::recovery_observations`] *consecutive* calmer
    /// observations, then drops straight to the latest raw severity.
    pub fn observe(&mut self, obs: Observation) -> HealthReport {
        self.seq += 1;
        let (raw, reasons) = self.classify(&obs);
        if raw > self.state {
            self.record(raw, reasons.clone());
        } else if raw < self.state {
            self.calm += 1;
            if self.calm >= self.thresholds.recovery_observations {
                self.record(raw, reasons.clone());
            }
        } else {
            self.calm = 0;
        }
        let tail = self.transitions.len().saturating_sub(SNAPSHOT_TRANSITIONS);
        HealthReport {
            state: self.state,
            raw,
            reasons,
            observation: obs,
            seq: self.seq,
            transitions: self.transitions[tail..].to_vec(),
        }
    }

    fn record(&mut self, to: HealthState, reasons: Vec<String>) {
        self.transitions.push(Transition {
            seq: self.seq,
            from: self.state,
            to,
            reasons,
        });
        self.state = to;
        self.calm = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(queue_depth: i64, failure_streak: i64, runs_per_sec: Option<f64>) -> Observation {
        Observation {
            queue_depth,
            failure_streak,
            runs_per_sec,
            workers_busy: 0,
            workers: 0,
        }
    }

    #[test]
    fn stays_healthy_on_clean_observations() {
        let mut e = HealthEngine::default();
        for _ in 0..5 {
            let r = e.observe(obs(3, 0, Some(120.0)));
            assert_eq!(r.state, HealthState::Healthy);
            assert!(r.reasons.is_empty());
        }
        assert!(e.transitions().is_empty());
    }

    #[test]
    fn failure_streak_walks_healthy_degraded_failing() {
        // The explicit threshold walk: streak 1 degrades (degraded_streak),
        // streak 3 fails (failing_streak) — each escalation immediate.
        let mut e = HealthEngine::default();
        assert_eq!(e.thresholds().degraded_streak, 1);
        assert_eq!(e.thresholds().failing_streak, 3);
        assert_eq!(e.observe(obs(0, 0, None)).state, HealthState::Healthy);
        let r = e.observe(obs(0, 1, None));
        assert_eq!(r.state, HealthState::Degraded);
        assert!(r.reasons[0].contains("failure_streak 1"), "{:?}", r.reasons);
        assert_eq!(e.observe(obs(0, 2, None)).state, HealthState::Degraded);
        let r = e.observe(obs(0, 3, None));
        assert_eq!(r.state, HealthState::Failing);
        assert!(
            r.reasons[0].contains("failing threshold 3"),
            "{:?}",
            r.reasons
        );
        let walk: Vec<_> = e.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            walk,
            vec![
                (HealthState::Healthy, HealthState::Degraded),
                (HealthState::Degraded, HealthState::Failing),
            ]
        );
    }

    #[test]
    fn recovery_needs_consecutive_calm_observations() {
        let mut e = HealthEngine::default();
        e.observe(obs(0, 3, None));
        assert_eq!(e.state(), HealthState::Failing);
        // One clean poll is not recovery (recovery_observations = 2)...
        assert_eq!(e.observe(obs(0, 0, None)).state, HealthState::Failing);
        // ...and a relapse resets the calm count.
        assert_eq!(e.observe(obs(0, 3, None)).state, HealthState::Failing);
        assert_eq!(e.observe(obs(0, 0, None)).state, HealthState::Failing);
        // The second *consecutive* calm poll de-escalates to its raw state.
        let r = e.observe(obs(0, 0, None));
        assert_eq!(r.state, HealthState::Healthy);
        let last = e.transitions().last().unwrap();
        assert_eq!(
            (last.from, last.to),
            (HealthState::Failing, HealthState::Healthy)
        );
        assert!(last.reasons.is_empty(), "recovery carries no fault reasons");
    }

    #[test]
    fn saturated_queue_degrades_and_recovers() {
        let mut e = HealthEngine::default();
        let limit = e.thresholds().max_queue_depth;
        let r = e.observe(obs(limit + 1, 0, Some(50.0)));
        assert_eq!(r.state, HealthState::Degraded);
        assert!(r.reasons[0].contains("queue_depth"), "{:?}", r.reasons);
        e.observe(obs(limit, 0, Some(50.0)));
        let r = e.observe(obs(0, 0, Some(50.0)));
        assert_eq!(r.state, HealthState::Healthy);
    }

    #[test]
    fn collapsed_throughput_with_queued_work_degrades() {
        let mut e = HealthEngine::default();
        // Below the floor but the queue is empty: idle, not degraded.
        assert_eq!(e.observe(obs(0, 0, Some(0.0))).state, HealthState::Healthy);
        // Below the floor with work queued: degraded.
        let r = e.observe(obs(5, 0, Some(0.2)));
        assert_eq!(r.state, HealthState::Degraded);
        assert!(r.reasons[0].contains("runs_per_sec"), "{:?}", r.reasons);
        // Unknown rate (first poll) never trips the floor.
        let mut fresh = HealthEngine::default();
        assert_eq!(fresh.observe(obs(5, 0, None)).state, HealthState::Healthy);
    }

    #[test]
    fn raw_severity_and_hysteresis_are_both_reported() {
        let mut e = HealthEngine::default();
        e.observe(obs(0, 3, None));
        let r = e.observe(obs(0, 0, None));
        assert_eq!(r.state, HealthState::Failing, "hysteresis holds the state");
        assert_eq!(r.raw, HealthState::Healthy, "raw severity is this poll's");
    }

    #[test]
    fn health_report_serialises_the_runbook_shape() {
        let mut e = HealthEngine::default();
        e.observe(obs(0, 1, None));
        let r = e.observe(obs(2, 1, Some(42.0)));
        let j = r.to_json();
        assert_eq!(j.get("state").and_then(Json::as_str), Some("degraded"));
        assert_eq!(j.get("last_cycle_failed"), Some(&Json::Bool(true)));
        let observed = j.get("observed").expect("observed");
        assert_eq!(
            observed.get("queue_depth").and_then(Json::as_f64),
            Some(2.0)
        );
        assert_eq!(
            observed.get("runs_per_sec").and_then(Json::as_f64),
            Some(42.0)
        );
        let transitions = j.get("transitions").and_then(Json::as_array).unwrap();
        assert_eq!(transitions.len(), 1);
        assert_eq!(
            transitions[0].get("to").and_then(Json::as_str),
            Some("degraded")
        );
        // The document round-trips through the strict parser.
        assert_eq!(Json::parse(&j.encode()).unwrap(), j);
    }

    #[test]
    fn observation_reads_the_live_registry_names() {
        let m = MetricsSnapshot {
            counters: vec![("engine.runs".to_string(), 400)],
            histograms: vec![],
            gauges: vec![
                ("engine.failure_streak".to_string(), 2),
                ("engine.queue_depth".to_string(), 9),
                ("engine.workers".to_string(), 8),
                ("engine.workers_busy".to_string(), 5),
            ],
        };
        let o = Observation::from_snapshot(&m, Some(10.0));
        assert_eq!(o.queue_depth, 9);
        assert_eq!(o.failure_streak, 2);
        assert_eq!(o.workers, 8);
        assert_eq!(o.workers_busy, 5);
        assert_eq!(o.runs_per_sec, Some(10.0));
    }
}
