//! The metrics endpoint: a std-only `TcpListener` HTTP server exposing
//! the live telemetry registry.
//!
//! Routes:
//!
//! * `GET /metrics` — the registry as Prometheus text ([`crate::prom`]);
//! * `GET /health` — one [`HealthEngine`](crate::HealthEngine)
//!   observation as JSON (runs/sec derived from the `engine.runs`
//!   counter delta since the previous `/health` poll);
//! * `GET /events` — the most recent structured log events as JSONL
//!   (`?tail=N` overrides the default tail of 64; invalid or oversized
//!   values are rejected with 400);
//! * `GET /diagnosis` — the live convergence document a monitored
//!   [`DiagnosisSession`](../../stm_core/engine/struct.DiagnosisSession.html)
//!   publishes (current top-k, score trajectories, stability verdict);
//!   `{"verdict":"idle"}` when no session has published one.
//!
//! One background thread accepts connections and answers each request
//! inline — scrapes are small and rare, so there is no per-connection
//! thread. [`MetricsServer::stop`] (also run on drop) flips a flag and
//! self-connects to unblock `accept`.

use crate::health::{HealthEngine, HealthThresholds, Observation};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many recent events `/events` returns.
const EVENTS_TAIL: usize = 64;

/// Per-connection socket timeout: a stalled scraper cannot wedge the
/// serving thread for long.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint. Stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// Shared request-handling state: the health state machine plus the
/// rate tracker feeding its runs/sec input.
struct ServerState {
    health: HealthEngine,
    last_rate: Option<(Instant, u64)>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving with default [`HealthThresholds`].
    pub fn start(addr: &str) -> std::io::Result<MetricsServer> {
        MetricsServer::start_with(addr, HealthThresholds::default())
    }

    /// Binds `addr` and starts serving with explicit thresholds.
    pub fn start_with(addr: &str, thresholds: HealthThresholds) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let state = Mutex::new(ServerState {
            health: HealthEngine::new(thresholds),
            last_rate: None,
        });
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("stm-observatory".to_string())
            .spawn(move || {
                for conn in listener.incoming() {
                    if thread_stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        let _ = serve_one(stream, &state);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address — the way to learn the port after `:0`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Relaxed);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Reads one request head (up to the blank line) and answers it.
fn serve_one(mut stream: TcpStream, state: &Mutex<ServerState>) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 8192 {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is served\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                crate::prom::render(&stm_telemetry::metrics_snapshot()),
            ),
            "/health" => ("200 OK", "application/json", health_body(state)),
            "/events" => match events_tail(query) {
                Ok(tail) => (
                    "200 OK",
                    "application/x-ndjson",
                    stm_telemetry::log::to_jsonl(&stm_telemetry::log::recent_events(tail)),
                ),
                Err(reason) => ("400 Bad Request", "text/plain; charset=utf-8", reason),
            },
            "/diagnosis" => ("200 OK", "application/json", diagnosis_body()),
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "routes: /metrics /health /events /diagnosis\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())
}

/// Resolves the `/events` tail: the default with no query string, an
/// explicit `tail=N` otherwise. Malformed input is an explicit 400 —
/// a silently-applied default would hand a scraper asking for
/// `tail=10O0` (typo) 64 events and no hint anything was wrong.
fn events_tail(query: Option<&str>) -> Result<usize, String> {
    let Some(query) = query else {
        return Ok(EVENTS_TAIL);
    };
    let mut tail = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key != "tail" {
            return Err(format!("unknown query parameter {key:?}; only tail=N\n"));
        }
        let n: usize = value
            .parse()
            .map_err(|_| format!("tail must be a non-negative integer, got {value:?}\n"))?;
        if n > stm_telemetry::log::EVENT_CAPACITY {
            return Err(format!(
                "tail {n} exceeds the event buffer capacity {}\n",
                stm_telemetry::log::EVENT_CAPACITY
            ));
        }
        tail = Some(n);
    }
    Ok(tail.unwrap_or(EVENTS_TAIL))
}

/// The `/diagnosis` body: the live convergence document, or the idle
/// placeholder when no monitored session has published one (or telemetry
/// is disabled). When a fleet daemon has published its `"fleet"` status
/// document (per-shard verdicts and backpressure gauges), it rides along
/// under the `fleet` key so one scrape shows the whole fleet.
fn diagnosis_body() -> String {
    use stm_telemetry::json::Json;
    let mut doc = stm_telemetry::status::get("diagnosis")
        .unwrap_or_else(|| Json::obj([("verdict", Json::from("idle"))]));
    if let Some(fleet) = stm_telemetry::status::get("fleet") {
        if let Json::Obj(map) = &mut doc {
            map.insert("fleet".to_string(), fleet);
        }
    }
    doc.encode() + "\n"
}

/// One health observation: snapshot the registry, derive runs/sec from
/// the `engine.runs` delta since the previous poll, feed the machine.
fn health_body(state: &Mutex<ServerState>) -> String {
    let m = stm_telemetry::metrics_snapshot();
    let runs = m.counter("engine.runs").unwrap_or(0);
    let now = Instant::now();
    let mut s = state.lock().unwrap_or_else(|p| p.into_inner());
    let rate = match s.last_rate {
        Some((at, prev)) => {
            let secs = now.duration_since(at).as_secs_f64();
            (secs > 0.0).then(|| runs.saturating_sub(prev) as f64 / secs)
        }
        None => None,
    };
    s.last_rate = Some((now, runs));
    let report = s.health.observe(Observation::from_snapshot(&m, rate));
    report.to_json().encode() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::watch::http_get;

    /// Telemetry is process-global; serialise the tests that enable it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        stm_telemetry::reset();
        stm_telemetry::set_enabled(true);
        guard
    }

    #[test]
    fn serves_metrics_health_and_events_live() {
        let _g = lock();
        stm_telemetry::counter!("engine.runs").add(7);
        stm_telemetry::gauge!("engine.queue_depth").set(2);
        stm_telemetry::log::set_stderr_level(None);
        stm_telemetry::log::info("test", "server.check", vec![]);
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let metrics = http_get(addr, "/metrics", IO_TIMEOUT).expect("/metrics");
        assert!(metrics.contains("stm_engine_runs_total 7\n"), "{metrics}");
        assert!(metrics.contains("stm_engine_queue_depth 2\n"), "{metrics}");

        let health = http_get(addr, "/health", IO_TIMEOUT).expect("/health");
        let j = stm_telemetry::json::Json::parse(health.trim()).expect("health JSON");
        assert_eq!(
            j.get("state").and_then(stm_telemetry::json::Json::as_str),
            Some("healthy")
        );
        assert_eq!(
            j.get("observed")
                .and_then(|o| o.get("queue_depth"))
                .and_then(stm_telemetry::json::Json::as_f64),
            Some(2.0)
        );

        let events = http_get(addr, "/events", IO_TIMEOUT).expect("/events");
        assert!(events.contains("\"server.check\""), "{events}");

        let miss = http_get(addr, "/nope", IO_TIMEOUT).expect("404 body");
        assert!(miss.contains("routes:"));
        assert!(miss.contains("/diagnosis"), "{miss}");
        server.stop();
        stm_telemetry::log::set_stderr_level(Some(stm_telemetry::log::Level::Warn));
        stm_telemetry::set_enabled(false);
    }

    /// Like [`http_get`], but returns the raw response including the
    /// status line, so tests can assert on the status code.
    fn http_get_raw(addr: SocketAddr, path: &str) -> String {
        use std::io::{Read, Write};
        let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT).expect("connect");
        stream.set_read_timeout(Some(IO_TIMEOUT)).unwrap();
        stream.set_write_timeout(Some(IO_TIMEOUT)).unwrap();
        let request = format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
        stream.write_all(request.as_bytes()).expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    #[test]
    fn events_tail_parameter_is_validated_not_defaulted() {
        let _g = lock();
        stm_telemetry::log::set_stderr_level(None);
        for i in 0..5 {
            stm_telemetry::log::info("test", "tail.check", vec![("i", i.to_string())]);
        }
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        // A valid explicit tail narrows the window.
        let two = http_get(addr, "/events?tail=2", IO_TIMEOUT).expect("tail=2");
        assert_eq!(two.lines().count(), 2, "{two}");
        // tail=0 is valid and empty.
        let zero = http_get(addr, "/events?tail=0", IO_TIMEOUT).expect("tail=0");
        assert_eq!(zero.lines().count(), 0, "{zero}");
        // No query string keeps the default.
        let default = http_get(addr, "/events", IO_TIMEOUT).expect("no query");
        assert_eq!(default.lines().count(), 5, "{default}");

        // Non-numeric, oversized, negative and unknown parameters are
        // explicit 400s, not silent defaults.
        for bad in [
            "/events?tail=abc",
            "/events?tail=10O0",
            "/events?tail=-1",
            "/events?tail=",
            "/events?tail=99999999",
            "/events?limit=3",
        ] {
            let raw = http_get_raw(addr, bad);
            assert!(raw.starts_with("HTTP/1.1 400 "), "{bad} -> {raw}");
        }

        server.stop();
        stm_telemetry::log::set_stderr_level(Some(stm_telemetry::log::Level::Warn));
        stm_telemetry::set_enabled(false);
    }

    #[test]
    fn diagnosis_endpoint_serves_idle_then_published_document() {
        let _g = lock();
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        let idle = http_get(addr, "/diagnosis", IO_TIMEOUT).expect("/diagnosis");
        let j = stm_telemetry::json::Json::parse(idle.trim()).expect("idle JSON");
        assert_eq!(
            j.get("verdict").and_then(stm_telemetry::json::Json::as_str),
            Some("idle")
        );

        stm_telemetry::status::publish(
            "diagnosis",
            stm_telemetry::json::Json::obj([
                ("verdict", stm_telemetry::json::Json::from("collecting")),
                ("witnesses_ingested", stm_telemetry::json::Json::from(7u64)),
            ]),
        );
        let live = http_get(addr, "/diagnosis", IO_TIMEOUT).expect("/diagnosis");
        let j = stm_telemetry::json::Json::parse(live.trim()).expect("live JSON");
        assert_eq!(
            j.get("verdict").and_then(stm_telemetry::json::Json::as_str),
            Some("collecting")
        );
        assert_eq!(
            j.get("witnesses_ingested")
                .and_then(stm_telemetry::json::Json::as_f64),
            Some(7.0)
        );

        server.stop();
        stm_telemetry::set_enabled(false);
    }

    #[test]
    fn diagnosis_endpoint_attaches_the_fleet_document() {
        let _g = lock();
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();

        stm_telemetry::status::publish(
            "fleet",
            stm_telemetry::json::Json::parse(
                r#"{"shed_total":4,"shards":{"sort-0":{"verdict":"collecting","witnesses":3}}}"#,
            )
            .unwrap(),
        );
        let body = http_get(addr, "/diagnosis", IO_TIMEOUT).expect("/diagnosis");
        let j = stm_telemetry::json::Json::parse(body.trim()).expect("JSON");
        // No session published: the top-level verdict stays idle, but
        // the fleet document rides along.
        assert_eq!(
            j.get("verdict").and_then(stm_telemetry::json::Json::as_str),
            Some("idle")
        );
        let fleet = j.get("fleet").expect("fleet key");
        assert_eq!(
            fleet
                .get("shards")
                .and_then(|s| s.get("sort-0"))
                .and_then(|s| s.get("verdict"))
                .and_then(stm_telemetry::json::Json::as_str),
            Some("collecting")
        );

        server.stop();
        stm_telemetry::set_enabled(false);
    }

    #[test]
    fn health_rate_tracks_runs_between_polls() {
        let _g = lock();
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        let rate_of = |body: String| {
            stm_telemetry::json::Json::parse(body.trim())
                .expect("health JSON")
                .get("observed")
                .and_then(|o| o.get("runs_per_sec"))
                .cloned()
        };
        let first = rate_of(http_get(addr, "/health", IO_TIMEOUT).unwrap());
        assert_eq!(
            first,
            Some(stm_telemetry::json::Json::Null),
            "first poll has no rate"
        );
        stm_telemetry::counter!("engine.runs").add(50);
        std::thread::sleep(Duration::from_millis(20));
        let second = rate_of(http_get(addr, "/health", IO_TIMEOUT).unwrap());
        let rate = second.and_then(|j| j.as_f64()).expect("a number");
        assert!(rate > 0.0, "rate {rate} must be positive");
        server.stop();
        stm_telemetry::set_enabled(false);
    }

    #[test]
    fn stop_joins_and_frees_the_port() {
        let _g = lock();
        let server = MetricsServer::start("127.0.0.1:0").expect("bind");
        let addr = server.addr();
        drop(server); // drop == stop
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port must be released after stop");
        stm_telemetry::set_enabled(false);
    }
}
