//! Prometheus text exposition (format version 0.0.4) for a
//! [`MetricsSnapshot`] — std-only, no client library.
//!
//! Metric names translate as `stm_` + the registry name with every
//! non-`[a-zA-Z0-9_:]` byte replaced by `_` (`engine.queue_depth` →
//! `stm_engine_queue_depth`). Counters gain the conventional `_total`
//! suffix. Histograms emit cumulative `_bucket{le="..."}` series using
//! the registry's log2 bucket upper bounds (`2^i - 1`), a `_sum` and a
//! `_count`; empty tail buckets are elided (the `+Inf` bucket always
//! closes the series, so the cumulative contract holds).

use stm_telemetry::{HistogramSnapshot, MetricsSnapshot};

/// `stm_` + the registry name, sanitised to Prometheus' charset.
pub fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("stm_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn render_histogram(out: &mut String, h: &HistogramSnapshot) {
    let name = metric_name(&h.name);
    out.push_str(&format!("# TYPE {name} histogram\n"));
    // Cumulative buckets up to the last occupied one; bucket i of the
    // registry covers [2^(i-1), 2^i), so its inclusive upper bound is
    // 2^i - 1 (bucket 0 is exactly zero).
    let last = h.buckets.iter().rposition(|&b| b > 0);
    let mut cum = 0u64;
    if let Some(last) = last {
        for (i, &b) in h.buckets.iter().take(last + 1).enumerate() {
            cum += b;
            let le = match i {
                0 => "0".to_string(),
                64.. => continue, // the top bucket is the +Inf line below
                _ => ((1u64 << i) - 1).to_string(),
            };
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Splits a registry series name into a sanitised base name and a
/// verbatim `{key="value"}` label suffix (the labeled-series form of
/// [`stm_telemetry::series_name`]). A suffix that is not exactly one
/// well-formed label — key in `[a-zA-Z0-9_]`, value free of quotes,
/// backslashes, braces and newlines — is NOT trusted: the whole name is
/// flattened through [`metric_name`] instead, so a hostile name can
/// never smuggle raw bytes into the exposition.
fn split_series(name: &str) -> (String, &str) {
    if let Some(start) = name.find('{') {
        if name.ends_with('}') {
            let labels = &name[start..];
            let inner = &labels[1..labels.len() - 1];
            if let Some((key, rest)) = inner.split_once("=\"") {
                if let Some(value) = rest.strip_suffix('"') {
                    let key_ok = !key.is_empty()
                        && key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
                    let value_ok = !value.contains(['"', '\\', '{', '}', '\n']);
                    if key_ok && value_ok {
                        return (metric_name(&name[..start]), labels);
                    }
                }
            }
        }
    }
    (metric_name(name), "")
}

/// Renders the whole snapshot as Prometheus text. Labeled series of the
/// same base metric share one `# TYPE` line.
pub fn render(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut typed = std::collections::BTreeSet::new();
    for (name, v) in &m.counters {
        let (base, labels) = split_series(name);
        if typed.insert(base.clone()) {
            out.push_str(&format!("# TYPE {base}_total counter\n"));
        }
        out.push_str(&format!("{base}_total{labels} {v}\n"));
    }
    typed.clear();
    for (name, v) in &m.gauges {
        let (base, labels) = split_series(name);
        if typed.insert(base.clone()) {
            out.push_str(&format!("# TYPE {base} gauge\n"));
        }
        out.push_str(&format!("{base}{labels} {v}\n"));
    }
    for h in &m.histograms {
        render_histogram(&mut out, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_sanitise_and_prefix() {
        assert_eq!(metric_name("engine.queue_depth"), "stm_engine_queue_depth");
        assert_eq!(metric_name("perturb.drop-rate"), "stm_perturb_drop_rate");
        assert_eq!(metric_name("a:b"), "stm_a:b");
    }

    #[test]
    fn counters_and_gauges_render() {
        let m = MetricsSnapshot {
            counters: vec![("engine.runs".to_string(), 42)],
            histograms: vec![],
            gauges: vec![("engine.queue_depth".to_string(), -3)],
        };
        let text = render(&m);
        assert!(text.contains("# TYPE stm_engine_runs_total counter\n"));
        assert!(text.contains("stm_engine_runs_total 42\n"));
        assert!(text.contains("# TYPE stm_engine_queue_depth gauge\n"));
        assert!(text.contains("stm_engine_queue_depth -3\n"));
    }

    #[test]
    fn labeled_series_keep_their_label_set() {
        let m = MetricsSnapshot {
            counters: vec![
                ("fleet.shed{shard=\"apache\"}".to_string(), 2),
                ("fleet.shed{shard=\"sort\"}".to_string(), 5),
            ],
            histograms: vec![],
            gauges: vec![("fleet.queue_depth{shard=\"sort\"}".to_string(), 3)],
        };
        let text = render(&m);
        // The counter suffix lands on the base name, before the labels.
        assert!(
            text.contains("stm_fleet_shed_total{shard=\"apache\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("stm_fleet_shed_total{shard=\"sort\"} 5\n"),
            "{text}"
        );
        assert!(
            text.contains("stm_fleet_queue_depth{shard=\"sort\"} 3\n"),
            "{text}"
        );
        // One TYPE line per base metric, not per labeled series.
        assert_eq!(
            text.matches("# TYPE stm_fleet_shed_total counter\n")
                .count(),
            1,
            "{text}"
        );
    }

    #[test]
    fn malformed_label_suffixes_flatten_instead_of_passing_through() {
        // A name that *looks* labeled but is not one clean key="value"
        // pair must flatten through the charset filter, never reach the
        // exposition verbatim.
        let m = MetricsSnapshot {
            counters: vec![
                ("bad{shard=\"a\"\nevil 1}".to_string(), 1),
                ("bad{shard=unquoted}".to_string(), 2),
                ("bad{=\"x\"}".to_string(), 3),
            ],
            histograms: vec![],
            gauges: vec![],
        };
        let text = render(&m);
        // The embedded newline must not have minted a standalone
        // "evil 1}" series line.
        for line in text.lines() {
            assert!(!line.starts_with("evil"), "raw bytes leaked: {line}");
        }
        assert!(
            text.contains("stm_bad_shard__a__evil_1__total 1\n"),
            "{text}"
        );
        assert!(text.contains("stm_bad_shard_unquoted__total 2\n"), "{text}");
    }

    #[test]
    fn histograms_render_cumulative_log2_buckets() {
        let mut buckets = vec![0u64; stm_telemetry::HISTOGRAM_BUCKETS];
        buckets[0] = 1; // one zero
        buckets[1] = 2; // two ones
        buckets[4] = 1; // one sample in [8,16)
        let m = MetricsSnapshot {
            counters: vec![],
            histograms: vec![HistogramSnapshot {
                name: "engine.queue_wait_us".to_string(),
                count: 4,
                sum: 12,
                min: 0,
                max: 10,
                buckets,
            }],
            gauges: vec![],
        };
        let text = render(&m);
        assert!(text.contains("# TYPE stm_engine_queue_wait_us histogram\n"));
        assert!(text.contains("stm_engine_queue_wait_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("stm_engine_queue_wait_us_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("stm_engine_queue_wait_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("stm_engine_queue_wait_us_bucket{le=\"15\"} 4\n"));
        assert!(!text.contains("le=\"31\""), "empty tail buckets elided");
        assert!(text.contains("stm_engine_queue_wait_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("stm_engine_queue_wait_us_sum 12\n"));
        assert!(text.contains("stm_engine_queue_wait_us_count 4\n"));
    }

    #[test]
    fn hostile_metric_names_sanitise_to_the_prometheus_charset() {
        // Quotes, backslashes, braces and spaces would corrupt the text
        // exposition (they terminate label values or series lines); every
        // non-charset byte must flatten to '_'.
        assert_eq!(metric_name(r#"a"b"#), "stm_a_b");
        assert_eq!(metric_name(r"a\b"), "stm_a_b");
        assert_eq!(metric_name("a{le=1}"), "stm_a_le_1_");
        assert_eq!(metric_name("a b\nc"), "stm_a_b_c");
        // Multi-byte characters flatten to one '_' each, not one per byte.
        assert_eq!(metric_name("héllo"), "stm_h_llo");
        assert_eq!(metric_name("日本"), "stm___");
        assert_eq!(metric_name(""), "stm_");
        // The sanitised name itself satisfies the charset.
        for name in [r#"a"b{}"#, "x y\tz", "é—ü"] {
            let clean = metric_name(name);
            assert!(
                clean
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "{clean}"
            );
        }
    }

    #[test]
    fn empty_histogram_renders_inf_bucket_and_zero_count() {
        // A registered-but-never-recorded histogram must still emit a
        // well-formed series: the +Inf bucket always closes the family
        // and agrees with _count, even with every bucket empty.
        let m = MetricsSnapshot {
            counters: vec![],
            histograms: vec![HistogramSnapshot {
                name: "engine.idle_us".to_string(),
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: vec![0u64; stm_telemetry::HISTOGRAM_BUCKETS],
            }],
            gauges: vec![],
        };
        let text = render(&m);
        assert!(text.contains("# TYPE stm_engine_idle_us histogram\n"));
        assert!(
            !text.contains("le=\"0\""),
            "no finite buckets for an empty histogram: {text}"
        );
        assert!(text.contains("stm_engine_idle_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("stm_engine_idle_us_sum 0\n"));
        assert!(text.contains("stm_engine_idle_us_count 0\n"));
    }

    /// Extracts `(le, cumulative)` pairs for one histogram, in emission
    /// order, mapping `+Inf` to `u64::MAX` for comparison.
    fn bucket_series(text: &str, name: &str) -> Vec<(u64, u64)> {
        let prefix = format!("{name}_bucket{{le=\"");
        text.lines()
            .filter_map(|l| l.strip_prefix(&prefix))
            .filter_map(|rest| {
                let (le, value) = rest.split_once("\"} ")?;
                let le = if le == "+Inf" {
                    u64::MAX
                } else {
                    le.parse().ok()?
                };
                Some((le, value.parse().ok()?))
            })
            .collect()
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_close_at_count() {
        // A scraper trusts two invariants: cumulative counts never
        // decrease as `le` grows, and the +Inf bucket equals _count.
        // Exercise a spread of occupancy patterns, including the top
        // overflow bucket (index 64, folded into +Inf).
        let patterns: Vec<Vec<(usize, u64)>> = vec![
            vec![(0, 5)],
            vec![(1, 1), (10, 3), (63, 2)],
            vec![(0, 1), (64, 7)],
            vec![(32, 1)],
        ];
        for occupancy in patterns {
            let mut buckets = vec![0u64; stm_telemetry::HISTOGRAM_BUCKETS];
            let mut count = 0;
            for &(i, n) in &occupancy {
                buckets[i] = n;
                count += n;
            }
            let m = MetricsSnapshot {
                counters: vec![],
                histograms: vec![HistogramSnapshot {
                    name: "engine.lat_us".to_string(),
                    count,
                    sum: count, // sum is free-form; any value renders
                    min: 0,
                    max: 0,
                    buckets,
                }],
                gauges: vec![],
            };
            let text = render(&m);
            let series = bucket_series(&text, "stm_engine_lat_us");
            assert!(!series.is_empty(), "{occupancy:?}");
            for pair in series.windows(2) {
                assert!(pair[0].0 < pair[1].0, "le must ascend: {series:?}");
                assert!(
                    pair[0].1 <= pair[1].1,
                    "cumulative counts must be monotone for {occupancy:?}: {series:?}"
                );
            }
            let (le, last) = *series.last().unwrap();
            assert_eq!(le, u64::MAX, "+Inf closes the series: {series:?}");
            assert_eq!(last, count, "+Inf equals _count for {occupancy:?}");
        }
    }
}
