//! # stm-observatory
//!
//! Live observability for the diagnosis pipeline: a health model over
//! the `stm-telemetry` registry, a std-only HTTP endpoint exposing it,
//! and the client pieces of the `stm_watch` status board.
//!
//! | module | provides |
//! |---|---|
//! | [`health`] | `healthy` / `degraded` / `failing` state machine with explicit thresholds and reasons |
//! | [`prom`] | Prometheus text exposition (0.0.4) for a [`stm_telemetry::MetricsSnapshot`] |
//! | [`server`] | [`MetricsServer`]: `TcpListener` serving `/metrics`, `/health`, `/events` |
//! | [`watch`] | HTTP GET, Prometheus parser, and board renderer for `stm_watch` |
//!
//! The crate reads the process-global telemetry registry; it never
//! writes metrics of its own, so enabling the endpoint cannot perturb
//! the measurements it reports (see `telemetry_overhead --server`).
//!
//! ```
//! use stm_observatory::{HealthEngine, HealthState, Observation};
//!
//! let mut engine = HealthEngine::default();
//! let report = engine.observe(Observation {
//!     queue_depth: 0,
//!     failure_streak: 0,
//!     runs_per_sec: Some(250.0),
//!     workers_busy: 0,
//!     workers: 4,
//! });
//! assert_eq!(report.state, HealthState::Healthy);
//! ```

#![warn(missing_docs)]

pub mod health;
pub mod prom;
pub mod server;
pub mod watch;

pub use health::{HealthEngine, HealthReport, HealthState, HealthThresholds, Observation};
pub use server::MetricsServer;
