//! Structured, leveled event log for the diagnosis pipeline.
//!
//! Counters and spans answer *how much* and *how long*; this module
//! answers *what happened*: discrete, timestamped events with a severity
//! [`Level`], a component, an optional flow id (the same ids
//! [`new_flow_id`](crate::new_flow_id) hands to spans, so an event can be
//! correlated with its causal chain in a trace), and free-form
//! `key = value` fields. Each event serialises to one canonical JSONL
//! line via the offline [`json`](crate::json) encoder.
//!
//! Two independent outputs:
//!
//! * **buffer** — events are kept in a bounded in-memory ring (capacity
//!   [`EVENT_CAPACITY`], drop-oldest) *only while collection is enabled*
//!   ([`crate::set_enabled`]); consumers drain with [`take_events`] or
//!   peek with [`recent_events`] (the observatory's `/events` endpoint).
//! * **stderr echo** — events at or above the echo threshold (default
//!   [`Level::Warn`]) print their JSONL line to stderr *regardless* of
//!   the collection switch, replacing the harness binaries' ad-hoc
//!   `eprintln!` warnings with a machine-parseable form.
//!
//! When collection is off and the level is below the echo threshold,
//! [`emit`] is a near-no-op (two relaxed atomic loads); hot paths that
//! would allocate fields should guard on [`would_log`] first.

use crate::json::Json;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume progress detail (per-job enqueue).
    Debug,
    /// Normal lifecycle milestones (session complete).
    Info,
    /// Degraded-but-continuing conditions (lost profile, failed write).
    Warn,
    /// Failures that abort work (worker panic, session error).
    Error,
}

impl Level {
    /// The lowercase name used in the JSONL encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Maximum number of buffered events; beyond it the oldest are dropped
/// (and counted — see [`dropped_events`]).
pub const EVENT_CAPACITY: usize = 4096;

/// One structured event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Microseconds since the process telemetry epoch (same clock as
    /// span timestamps, so events and spans line up in a trace).
    pub ts_us: u64,
    /// Severity.
    pub level: Level,
    /// Emitting component (`"engine"`, `"bench"`, ...).
    pub component: &'static str,
    /// Event name within the component (`"session.complete"`, ...).
    pub event: &'static str,
    /// Cross-thread flow id tying the event to a span chain; 0 when the
    /// event is not part of any flow.
    pub flow: u64,
    /// Free-form `key = value` payload.
    pub fields: Vec<(&'static str, String)>,
}

impl Event {
    /// The event as a JSON object (one JSONL line once encoded).
    pub fn to_json(&self) -> Json {
        let fields: std::collections::BTreeMap<String, Json> = self
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), Json::Str(v.clone())))
            .collect();
        Json::obj([
            ("ts_us", Json::from(self.ts_us)),
            ("level", Json::from(self.level.as_str())),
            ("component", Json::from(self.component)),
            ("event", Json::from(self.event)),
            ("flow", Json::from(self.flow)),
            ("fields", Json::Obj(fields)),
        ])
    }
}

/// Encodes events as JSONL, one canonical line per event.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_json().encode());
        out.push('\n');
    }
    out
}

struct EventSink {
    events: VecDeque<Event>,
    dropped: u64,
}

fn sink() -> &'static Mutex<EventSink> {
    static SINK: OnceLock<Mutex<EventSink>> = OnceLock::new();
    SINK.get_or_init(|| {
        Mutex::new(EventSink {
            events: VecDeque::new(),
            dropped: 0,
        })
    })
}

/// Echo threshold as a `Level` discriminant; `OFF` disables the echo.
const ECHO_OFF: u8 = u8::MAX;
static ECHO_LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);

/// Sets the stderr echo threshold: events at or above `level` print
/// their JSONL line to stderr as they are emitted. `None` silences the
/// echo entirely. The default is [`Level::Warn`].
pub fn set_stderr_level(level: Option<Level>) {
    ECHO_LEVEL.store(level.map_or(ECHO_OFF, |l| l as u8), Ordering::Relaxed);
}

fn echoes(level: Level) -> bool {
    (level as u8) >= ECHO_LEVEL.load(Ordering::Relaxed)
}

/// Whether an event at `level` would be recorded anywhere right now —
/// buffered (collection enabled) or echoed (at/above the stderr
/// threshold). Hot paths guard field construction on this.
#[inline]
pub fn would_log(level: Level) -> bool {
    crate::enabled() || echoes(level)
}

/// Emits one event. Buffered while collection is enabled; echoed to
/// stderr at/above the echo threshold (independent of the collection
/// switch). A near-no-op when neither applies.
pub fn emit(
    level: Level,
    component: &'static str,
    event: &'static str,
    flow: u64,
    fields: Vec<(&'static str, String)>,
) {
    let buffer = crate::enabled();
    let echo = echoes(level);
    if !buffer && !echo {
        return;
    }
    let e = Event {
        ts_us: crate::now_us(),
        level,
        component,
        event,
        flow,
        fields,
    };
    if echo {
        eprintln!("{}", e.to_json().encode());
    }
    if buffer {
        let mut s = sink().lock().unwrap_or_else(|p| p.into_inner());
        if s.events.len() >= EVENT_CAPACITY {
            s.events.pop_front();
            s.dropped += 1;
        }
        s.events.push_back(e);
    }
}

/// Emits a [`Level::Debug`] event (no flow).
pub fn debug(component: &'static str, event: &'static str, fields: Vec<(&'static str, String)>) {
    emit(Level::Debug, component, event, 0, fields);
}

/// Emits a [`Level::Info`] event (no flow).
pub fn info(component: &'static str, event: &'static str, fields: Vec<(&'static str, String)>) {
    emit(Level::Info, component, event, 0, fields);
}

/// Emits a [`Level::Warn`] event (no flow).
pub fn warn(component: &'static str, event: &'static str, fields: Vec<(&'static str, String)>) {
    emit(Level::Warn, component, event, 0, fields);
}

/// Emits a [`Level::Error`] event (no flow).
pub fn error(component: &'static str, event: &'static str, fields: Vec<(&'static str, String)>) {
    emit(Level::Error, component, event, 0, fields);
}

/// Drains every buffered event, oldest first.
///
/// Dropping the result silently discards the events — export them.
#[must_use = "draining removes the events; dropping the result loses them"]
pub fn take_events() -> Vec<Event> {
    let mut s = sink().lock().unwrap_or_else(|p| p.into_inner());
    s.events.drain(..).collect()
}

/// Clones the most recent `n` buffered events (oldest of those first)
/// without draining — the live `/events` endpoint's read.
#[must_use = "the copied events are the result; use them"]
pub fn recent_events(n: usize) -> Vec<Event> {
    let s = sink().lock().unwrap_or_else(|p| p.into_inner());
    let skip = s.events.len().saturating_sub(n);
    s.events.iter().skip(skip).cloned().collect()
}

/// How many events the bounded buffer has dropped (oldest-first) since
/// the last [`reset`](crate::reset).
pub fn dropped_events() -> u64 {
    sink().lock().unwrap_or_else(|p| p.into_inner()).dropped
}

/// Clears the buffer and the dropped-event count (called by
/// [`crate::reset`]).
pub(crate) fn reset_events() {
    let mut s = sink().lock().unwrap_or_else(|p| p.into_inner());
    s.events.clear();
    s.dropped = 0;
}
