//! A minimal JSON value type with an encoder and a strict parser.
//!
//! The build environment is offline, so the exporters cannot lean on
//! `serde_json`; this module implements the small subset of JSON the
//! telemetry formats need — which is all of JSON, minus any notion of
//! schema. Numbers are `f64` (Chrome's trace viewer assumes the same).
//!
//! ```
//! use stm_telemetry::json::Json;
//! let v = Json::parse(r#"{"name":"lbra","runs":[1,2,3]}"#).unwrap();
//! assert_eq!(v.get("name").and_then(Json::as_str), Some("lbra"));
//! assert_eq!(v.get("runs").and_then(Json::as_array).map(|a| a.len()), Some(3));
//! let text = v.encode();
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys are sorted (BTreeMap), making encodings canonical.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A member of an object, by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The members, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Encodes to compact JSON text.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if *n == n.trunc() && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text. The whole input must be one value (plus
    /// whitespace); trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars() {
        for text in ["null", "true", "false", "0", "-17", "3.5", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(Json::parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#" {"a": [1, {"b": null}, "x\ny"], "c": 2e3} "#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_f64), Some(2000.0));
        let a = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a[2].as_str(), Some("x\ny"));
        assert_eq!(a[1].get("b"), Some(&Json::Null));
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "quote\" back\\ nl\n tab\t ctrl\u{1} unicode\u{1F600}";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "tru", "\"unterminated", "1 2", "{\"a\" 1}"] {
            assert!(Json::parse(text).is_err(), "{text:?} parsed");
        }
    }

    #[test]
    fn integers_encode_without_fraction() {
        assert_eq!(Json::Num(42.0).encode(), "42");
        assert_eq!(Json::Num(2.5).encode(), "2.5");
    }
}
