//! Exporters: human-readable summary table, JSONL metrics dump, and the
//! Chrome `trace_event` span export.
//!
//! The Chrome format is the JSON Object Format of the Trace Event
//! specification: `{"traceEvents": [...]}` where each span is a complete
//! event (`"ph": "X"` with `ts`/`dur` in microseconds) and each marker an
//! instant event (`"ph": "i"`). The output loads directly in
//! `chrome://tracing` and <https://ui.perfetto.dev>.

use crate::json::Json;
use crate::{FlowPhase, HistogramSnapshot, MetricsSnapshot, SpanRecord};
use std::fmt::Write as _;

/// Renders a fixed-width summary table of every counter, gauge, and
/// histogram.
#[must_use = "rendering has no side effects; print or write the returned text"]
pub fn summary(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if !m.counters.is_empty() {
        let width = m
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(7);
        let _ = writeln!(out, "{:<width$} {:>14}", "counter", "value");
        for (name, value) in &m.counters {
            let _ = writeln!(out, "{name:<width$} {value:>14}");
        }
    }
    if !m.gauges.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let width = m
            .gauges
            .iter()
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(5);
        let _ = writeln!(out, "{:<width$} {:>14}", "gauge", "value");
        for (name, value) in &m.gauges {
            let _ = writeln!(out, "{name:<width$} {value:>14}");
        }
    }
    if !m.histograms.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        let width = m
            .histograms
            .iter()
            .map(|h| h.name.len())
            .max()
            .unwrap_or(0)
            .max(9);
        let _ = writeln!(
            out,
            "{:<width$} {:>10} {:>14} {:>12} {:>8} {:>10} {:>10}",
            "histogram", "count", "sum", "mean", "min", "p95", "max"
        );
        for h in &m.histograms {
            let _ = writeln!(
                out,
                "{:<width$} {:>10} {:>14} {:>12.1} {:>8} {:>10} {:>10}",
                h.name,
                h.count,
                h.sum,
                h.mean(),
                h.min,
                h.quantile(0.95),
                h.max
            );
        }
    }
    if out.is_empty() {
        out.push_str("(no metrics recorded)\n");
    }
    out
}

fn histogram_json(h: &HistogramSnapshot) -> Json {
    Json::obj([
        ("type", "histogram".into()),
        ("name", h.name.clone().into()),
        ("count", h.count.into()),
        ("sum", h.sum.into()),
        ("mean", h.mean().into()),
        ("min", h.min.into()),
        ("max", h.max.into()),
        ("p50", h.quantile(0.5).into()),
        ("p95", h.quantile(0.95).into()),
        (
            "buckets",
            Json::Arr(
                h.buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| **c > 0)
                    .map(|(i, c)| Json::obj([("bucket", i.into()), ("count", (*c).into())]))
                    .collect(),
            ),
        ),
    ])
}

/// Renders the snapshot as JSONL: one JSON object per line, counters
/// first, then gauges, then histograms.
#[must_use = "rendering has no side effects; print or write the returned text"]
pub fn jsonl(m: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &m.counters {
        let line = Json::obj([
            ("type", "counter".into()),
            ("name", name.clone().into()),
            ("value", (*value).into()),
        ]);
        out.push_str(&line.encode());
        out.push('\n');
    }
    for (name, value) in &m.gauges {
        let line = Json::obj([
            ("type", "gauge".into()),
            ("name", name.clone().into()),
            ("value", Json::from(*value as f64)),
        ]);
        out.push_str(&line.encode());
        out.push('\n');
    }
    for h in &m.histograms {
        out.push_str(&histogram_json(h).encode());
        out.push('\n');
    }
    out
}

/// Renders the whole snapshot as one JSON object (for `results/BENCH_*`
/// artifacts that embed metrics next to their table data).
#[must_use = "serialization has no side effects; use the returned value"]
pub fn metrics_json(m: &MetricsSnapshot) -> Json {
    Json::obj([
        (
            "counters",
            Json::Obj(
                m.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), (*v).into()))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                m.gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::from(*v as f64)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Arr(m.histograms.iter().map(histogram_json).collect()),
        ),
    ])
}

/// Renders spans as Chrome `trace_event` JSON (the object format, with a
/// `traceEvents` array of `"X"` complete and `"i"` instant events).
///
/// Span and parent ids travel in each event's `args`, and flow-tagged
/// spans additionally emit a flow event (`"s"`/`"t"`/`"f"` for
/// [`FlowPhase::Start`]/[`Step`](FlowPhase::Step)/[`End`](FlowPhase::End))
/// bound inside the span's time slice, so Perfetto draws arrows along the
/// causal chain.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut events: Vec<Json> = Vec::with_capacity(spans.len());
    for s in spans {
        let mut ev = vec![
            ("name", Json::from(s.name)),
            ("cat", Json::from(s.cat)),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(s.tid)),
            ("ts", Json::from(s.start_us)),
        ];
        match s.dur_us {
            Some(dur) => {
                ev.push(("ph", "X".into()));
                ev.push(("dur", dur.into()));
            }
            None => {
                ev.push(("ph", "i".into()));
                ev.push(("s", "t".into()));
            }
        }
        if s.id != 0 {
            ev.push((
                "args",
                Json::obj([("span", s.id.into()), ("parent", s.parent.into())]),
            ));
        }
        events.push(Json::obj(ev));
        if s.flow == 0 {
            continue;
        }
        let Some(phase) = s.flow_phase else { continue };
        // Flow events bind to the slice enclosing their timestamp; the
        // midpoint keeps them inside even for zero-duration spans.
        let mut fl = vec![
            ("name", Json::from("flow")),
            ("cat", Json::from(s.cat)),
            ("id", Json::from(s.flow)),
            ("pid", Json::from(1u64)),
            ("tid", Json::from(s.tid)),
            ("ts", Json::from(s.start_us + s.dur_us.unwrap_or(0) / 2)),
        ];
        match phase {
            FlowPhase::Start => fl.push(("ph", "s".into())),
            FlowPhase::Step => fl.push(("ph", "t".into())),
            FlowPhase::End => {
                fl.push(("ph", "f".into()));
                // Bind the arrowhead to the enclosing slice.
                fl.push(("bp", "e".into()));
            }
        }
        events.push(Json::obj(fl));
    }
    Json::obj([
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", "ms".into()),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut h = HistogramSnapshot {
            name: "h.latency".into(),
            count: 3,
            sum: 14,
            min: 2,
            max: 8,
            buckets: vec![0; crate::HISTOGRAM_BUCKETS],
        };
        h.buckets[2] = 1; // 2
        h.buckets[3] = 2; // 4 and 8? 8 is bucket 4; keep it synthetic
        MetricsSnapshot {
            counters: vec![("c.runs".into(), 7)],
            gauges: vec![("g.depth".into(), -3)],
            histograms: vec![h],
        }
    }

    #[test]
    fn summary_lists_everything() {
        let s = summary(&sample_snapshot());
        assert!(s.contains("c.runs"));
        assert!(s.contains('7'));
        assert!(s.contains("g.depth"));
        assert!(s.contains("-3"));
        assert!(s.contains("h.latency"));
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = jsonl(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = Json::parse(line).expect("valid JSON line");
            assert!(v.get("type").is_some());
        }
    }

    fn record(name: &'static str, start_us: u64, dur_us: Option<u64>, id: u64) -> SpanRecord {
        SpanRecord {
            name,
            cat: "test",
            tid: 1,
            start_us,
            dur_us,
            id,
            parent: 0,
            flow: 0,
            flow_phase: None,
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let mut child = record("phase", 10, Some(25), 2);
        child.parent = 1;
        let spans = vec![child, record("marker", 12, None, 3)];
        let text = chrome_trace(&spans);
        let v = Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[0].get("dur").and_then(Json::as_f64), Some(25.0));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("i"));
        for e in events {
            for key in ["name", "cat", "pid", "tid", "ts", "ph"] {
                assert!(e.get(key).is_some(), "missing {key}");
            }
        }
        let args = events[0].get("args").expect("span/parent args");
        assert_eq!(args.get("span").and_then(Json::as_f64), Some(2.0));
        assert_eq!(args.get("parent").and_then(Json::as_f64), Some(1.0));
    }

    #[test]
    fn chrome_trace_emits_flow_events_inside_their_slices() {
        let mut start = record("enqueue", 0, Some(10), 1);
        start.flow = 42;
        start.flow_phase = Some(FlowPhase::Start);
        let mut step = record("execute", 20, Some(30), 2);
        step.flow = 42;
        step.flow_phase = Some(FlowPhase::Step);
        step.tid = 2;
        let mut end = record("consume", 60, Some(4), 3);
        end.flow = 42;
        end.flow_phase = Some(FlowPhase::End);
        let text = chrome_trace(&[start, step, end]);
        let v = Json::parse(&text).expect("valid JSON");
        let events = v.get("traceEvents").and_then(Json::as_array).unwrap();
        // Three slices plus one flow event each.
        assert_eq!(events.len(), 6);
        let flows: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("flow"))
            .collect();
        let phases: Vec<&str> = flows
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        assert_eq!(phases, ["s", "t", "f"]);
        for f in &flows {
            assert_eq!(f.get("id").and_then(Json::as_f64), Some(42.0));
        }
        // The terminating event binds its arrowhead to the enclosing
        // slice, and every flow timestamp sits inside its span.
        assert_eq!(flows[2].get("bp").and_then(Json::as_str), Some("e"));
        assert_eq!(flows[0].get("ts").and_then(Json::as_f64), Some(5.0));
        assert_eq!(flows[1].get("ts").and_then(Json::as_f64), Some(35.0));
        assert_eq!(flows[2].get("ts").and_then(Json::as_f64), Some(62.0));
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        assert!(summary(&MetricsSnapshot::default()).contains("no metrics"));
    }
}
