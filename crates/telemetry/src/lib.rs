//! # stm-telemetry — observability for the stm stack
//!
//! The paper's whole pitch is *observability on the cheap*: LBR/LCR rings
//! are hardware telemetry and LBRA/LCRA are statistical consumers of it.
//! This crate gives the reproduction the same property about itself —
//! always-compiled-in, near-zero-cost-when-off instrumentation of the
//! interpreter, the simulated hardware rings and the diagnosis pipeline.
//!
//! Three primitive kinds, all `std`-only and process-global:
//!
//! * [`Counter`] — a monotonically increasing atomic `u64`, declared at the
//!   use site with [`counter!`];
//! * [`Histogram`] — log2-bucketed value distribution (count, sum, min,
//!   max, percentile estimates), declared with [`histogram!`];
//! * [`Gauge`] — an instantaneous level (queue depth, failure streak)
//!   that moves both ways, declared with [`gauge!`];
//! * spans — hierarchical RAII wall-clock timers created with [`span`] /
//!   [`span_cat`], recorded as Chrome `trace_event` complete events, plus
//!   zero-duration [`instant`] markers.
//!
//! A structured, leveled JSONL event log (what *happened*, not how much
//! or how long) lives in [`log`]; the live health model and HTTP
//! endpoint built on these metrics live in the `stm-observatory` crate.
//!
//! Collection is gated by one global switch ([`set_enabled`]); when off,
//! every operation is a load of one relaxed atomic and an early return —
//! no locks, no allocation, no timestamps.
//!
//! Export lives in [`export`]: a human-readable summary table, a JSONL
//! metrics dump, and a Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. A minimal JSON value
//! type with an encoder *and* parser lives in [`json`] (the build is
//! offline; no serde).
//!
//! ## Example
//!
//! ```
//! stm_telemetry::set_enabled(true);
//! {
//!     let _run = stm_telemetry::span("demo.phase");
//!     stm_telemetry::counter!("demo.events").add(3);
//!     stm_telemetry::histogram!("demo.latency_us").record(250);
//! }
//! let m = stm_telemetry::metrics_snapshot();
//! assert_eq!(m.counter("demo.events"), Some(3));
//! let trace = stm_telemetry::export::chrome_trace(&stm_telemetry::take_spans());
//! assert!(trace.contains("demo.phase"));
//! stm_telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod json;
pub mod log;
pub mod status;

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global collection switch. Relaxed is enough: telemetry is advisory and
/// never synchronises program data.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off. Off is the default; when off every
/// instrumentation call is a true no-op (one relaxed atomic load).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of log2 histogram buckets: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros), up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The global registry of every counter/histogram that has ever recorded
/// a value, plus the span sink.
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    spans: Mutex<Vec<SpanRecord>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        spans: Mutex::new(Vec::new()),
    })
}

/// Process-wide monotonic epoch; all span timestamps are microseconds
/// since the first telemetry event.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named monotonic counter. Declare one per site with [`counter!`]; the
/// static is registered globally on its first recorded increment.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates a zeroed counter (used by the [`counter!`] macro).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op while collection is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
    }

    /// Adds one; a no-op while collection is disabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Declares (once) and returns a `&'static Counter` for this call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static COUNTER: $crate::Counter = $crate::Counter::new($name);
        &COUNTER
    }};
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A named log2-bucketed histogram of `u64` samples. Declare one per site
/// with [`histogram!`].
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// Creates an empty histogram (used by the [`histogram!`] macro).
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bucket index of a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records a sample; a no-op while collection is disabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().histograms.lock().unwrap().push(self);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            name: self.name.to_string(),
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Declares (once) and returns a `&'static Histogram` for this call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        &HISTOGRAM
    }};
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// A named instantaneous level (queue depth, in-flight jobs, live workers):
/// unlike a [`Counter`] it moves both ways and snapshots report its
/// *current* value, not an accumulation. Declare one per site with
/// [`gauge!`].
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// Creates a zeroed gauge (used by the [`gauge!`] macro).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Moves the level by `delta` (negative to lower it); a no-op while
    /// collection is disabled.
    #[inline]
    pub fn add(&'static self, delta: i64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
        self.register();
    }

    /// Sets the level outright; a no-op while collection is disabled.
    #[inline]
    pub fn set(&'static self, v: i64) {
        if !enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
        self.register();
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().gauges.lock().unwrap().push(self);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Declares (once) and returns a `&'static Gauge` for this call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static GAUGE: $crate::Gauge = $crate::Gauge::new($name);
        &GAUGE
    }};
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)`, bucket 0 is
    /// exactly zero.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, 0.0 when empty.
    #[must_use = "the computed mean is the result; use it"]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket holding that rank — an over-estimate by at most 2x, which is
    /// the log2-bucket resolution.
    #[must_use = "the computed quantile is the result; use it"]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        self.max
    }

    /// Bucket-wise difference against an `earlier` snapshot of the same
    /// metric: `count`, `sum` and the per-bucket tallies subtract.
    /// `min`/`max` keep this (later) snapshot's values — extrema cannot
    /// be attributed to a window, so they stay whole-process bounds.
    #[must_use = "the computed delta is the result; use it"]
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut d = self.clone();
        d.count = self.count.saturating_sub(earlier.count);
        d.sum = self.sum.saturating_sub(earlier.sum);
        for (i, b) in d.buckets.iter_mut().enumerate() {
            *b = b.saturating_sub(earlier.buckets.get(i).copied().unwrap_or(0));
        }
        d
    }

    /// Folds another snapshot of the *same* metric name into this one —
    /// used when several call-site statics share a histogram name.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One finished span or instant marker, in Chrome `trace_event` terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Event name (`"lbra.ranking"`, ...).
    pub name: &'static str,
    /// Category (`"machine"`, `"hardware"`, `"diagnosis"`, ...).
    pub cat: &'static str,
    /// Logical thread id of the recording OS thread.
    pub tid: u64,
    /// Start, microseconds since the process telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds; `None` for instant markers.
    pub dur_us: Option<u64>,
    /// Process-unique id of this event (never 0 once recorded).
    pub id: u64,
    /// Id of the span that was open on the same thread when this event
    /// started; 0 for top-level events.
    pub parent: u64,
    /// Flow id tying this span into a cross-thread causal chain, 0 when
    /// the span is not part of any flow. See [`SpanGuard::with_flow`].
    pub flow: u64,
    /// This span's role in its flow; `None` whenever `flow` is 0.
    pub flow_phase: Option<FlowPhase>,
}

/// Where a span sits in a cross-thread flow. The Chrome trace exporter
/// maps the three phases to flow events `"s"` (start), `"t"` (step) and
/// `"f"` (end), which Perfetto renders as arrows between the spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// The producing end of the chain (e.g. a job enqueue).
    Start,
    /// An intermediate hop (e.g. the worker executing the job).
    Step,
    /// The consuming end of the chain (e.g. ordered consumption).
    End,
}

/// Allocates a process-unique id for a new cross-thread flow. Hand the id
/// to every [`SpanGuard::with_flow`] participant of the chain.
pub fn new_flow_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// Id of the innermost open span on this thread (0 = none); gives
    /// every record its `parent` without a global structure.
    static CURRENT_SPAN: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

fn thread_index() -> u64 {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    thread_local! {
        static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed) as u64;
    }
    INDEX.with(|i| *i)
}

/// Finished spans batch in a thread-local buffer and move to the global
/// sink in chunks, so span-heavy hot paths don't contend on one mutex.
const SPAN_FLUSH_THRESHOLD: usize = 128;

/// Bumped by [`reset`]. A thread-local buffer stamped with an older epoch
/// holds spans recorded *before* the reset; they are discarded (instead of
/// leaking into the next export) the next time that buffer is touched.
static SPAN_EPOCH: AtomicU64 = AtomicU64::new(0);

/// The buffer flushes on overflow and (via `Drop`) on thread exit.
struct LocalSpans {
    spans: Vec<SpanRecord>,
    epoch: u64,
}

impl LocalSpans {
    /// Drops spans recorded before the last [`reset`], which invalidated
    /// them by bumping [`SPAN_EPOCH`].
    fn sync_epoch(&mut self) {
        let current = SPAN_EPOCH.load(Ordering::Relaxed);
        if self.epoch != current {
            self.spans.clear();
            self.epoch = current;
        }
    }
}

impl Drop for LocalSpans {
    fn drop(&mut self) {
        self.sync_epoch();
        if !self.spans.is_empty() {
            registry().spans.lock().unwrap().append(&mut self.spans);
        }
    }
}

thread_local! {
    static LOCAL_SPANS: std::cell::RefCell<LocalSpans> =
        const { std::cell::RefCell::new(LocalSpans { spans: Vec::new(), epoch: 0 }) };
}

fn push_span(rec: SpanRecord) {
    let mut rec = Some(rec);
    let _ = LOCAL_SPANS.try_with(|l| {
        let mut l = l.borrow_mut();
        l.sync_epoch();
        l.spans.push(rec.take().unwrap());
        if l.spans.len() >= SPAN_FLUSH_THRESHOLD {
            registry().spans.lock().unwrap().append(&mut l.spans);
        }
    });
    if let Some(r) = rec {
        // The thread-local is gone (thread teardown); sink directly.
        registry().spans.lock().unwrap().push(r);
    }
}

fn flush_local_spans() {
    let _ = LOCAL_SPANS.try_with(|l| {
        let mut l = l.borrow_mut();
        l.sync_epoch();
        if !l.spans.is_empty() {
            registry().spans.lock().unwrap().append(&mut l.spans);
        }
    });
}

/// An RAII span: records a complete event from creation to drop. Created
/// by [`span`] / [`span_cat`]; inactive (fully free) when collection is
/// disabled at creation time.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    active: bool,
    id: u64,
    parent: u64,
    flow: u64,
    flow_phase: Option<FlowPhase>,
}

impl SpanGuard {
    /// The span's process-unique id; 0 when the guard is inactive
    /// (collection was off at creation).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ties this span into the cross-thread flow `flow` with the given
    /// phase, so the trace exporter draws an arrow through it. A no-op
    /// when the guard is inactive or `flow` is 0.
    pub fn with_flow(mut self, flow: u64, phase: FlowPhase) -> SpanGuard {
        if self.active && flow != 0 {
            self.flow = flow;
            self.flow_phase = Some(phase);
        }
        self
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = now_us();
        let _ = CURRENT_SPAN.try_with(|c| c.set(self.parent));
        push_span(SpanRecord {
            name: self.name,
            cat: self.cat,
            tid: thread_index(),
            start_us: self.start_us,
            dur_us: Some(end.saturating_sub(self.start_us)),
            id: self.id,
            parent: self.parent,
            flow: self.flow,
            flow_phase: self.flow_phase,
        });
    }
}

/// Opens a span in the default category; closes when the guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "stm")
}

/// Opens a span with an explicit category.
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    let active = enabled();
    let (id, parent) = if active {
        let id = next_span_id();
        let parent = CURRENT_SPAN
            .try_with(|c| {
                let parent = c.get();
                c.set(id);
                parent
            })
            .unwrap_or(0);
        (id, parent)
    } else {
        (0, 0)
    };
    SpanGuard {
        name,
        cat,
        start_us: if active { now_us() } else { 0 },
        active,
        id,
        parent,
        flow: 0,
        flow_phase: None,
    }
}

/// Records an instant marker (a zero-duration event).
pub fn instant(name: &'static str, cat: &'static str) {
    if !enabled() {
        return;
    }
    push_span(SpanRecord {
        name,
        cat,
        tid: thread_index(),
        start_us: now_us(),
        dur_us: None,
        id: next_span_id(),
        parent: CURRENT_SPAN.try_with(|c| c.get()).unwrap_or(0),
        flow: 0,
        flow_phase: None,
    });
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
    /// `(name, level)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
}

impl MetricsSnapshot {
    /// The value of a counter, when registered.
    #[must_use = "the looked-up value is the result; use it"]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A histogram snapshot, when registered.
    #[must_use = "the looked-up snapshot is the result; use it"]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The level of a gauge, when registered.
    #[must_use = "the looked-up level is the result; use it"]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Difference against an earlier snapshot, covering all three metric
    /// kinds. Counters subtract (they are monotonic; missing-before names
    /// diff against zero) and zero deltas are dropped. Histograms
    /// subtract bucket-wise via [`HistogramSnapshot::delta`] and empty
    /// deltas are dropped. Gauges report the level *change* (which can be
    /// negative); unchanged gauges are dropped. Used by the table
    /// harnesses to attribute metrics to one benchmark.
    #[must_use = "the computed deltas are the result; use them"]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| (n.clone(), v.saturating_sub(earlier.counter(n).unwrap_or(0))))
            .filter(|(_, v)| *v > 0)
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter_map(|h| {
                let d = match earlier.histogram(&h.name) {
                    Some(e) => h.delta(e),
                    None => h.clone(),
                };
                (d.count > 0).then_some(d)
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| (n.clone(), v - earlier.gauge(n).unwrap_or(0)))
            .filter(|(_, v)| *v != 0)
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
            gauges,
        }
    }
}

/// Copies out every registered counter and histogram.
///
/// The `counter!`/`gauge!`/`histogram!` macros declare one static per
/// *call site*, so the same metric name may be registered several times
/// (e.g. a counter bumped on both the sequential and the pooled path of
/// an engine). Snapshots merge same-name entries — counters and gauges
/// sum, histograms combine — so each name appears exactly once.
#[must_use = "snapshotting does not export anything by itself; use the returned snapshot"]
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut counters: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for c in registry().counters.lock().unwrap().iter() {
        *counters.entry(c.name.to_string()).or_insert(0) += c.get();
    }
    let mut histograms: std::collections::BTreeMap<String, HistogramSnapshot> =
        std::collections::BTreeMap::new();
    for h in registry().histograms.lock().unwrap().iter() {
        let snap = h.snapshot();
        match histograms.entry(snap.name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&snap),
        }
    }
    let mut gauges: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for g in registry().gauges.lock().unwrap().iter() {
        *gauges.entry(g.name.to_string()).or_insert(0) += g.get();
    }
    for (name, v) in labeled()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
    {
        *counters.entry(name.clone()).or_insert(0) += v;
    }
    for (name, v) in labeled()
        .gauges
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
    {
        *gauges.entry(name.clone()).or_insert(0) += v;
    }
    MetricsSnapshot {
        counters: counters.into_iter().collect(),
        histograms: histograms.into_values().collect(),
        gauges: gauges.into_iter().collect(),
    }
}

// ---------------------------------------------------------------------------
// Labeled metrics
// ---------------------------------------------------------------------------

/// Dynamically-labeled counters and gauges — the per-shard series the
/// fleet daemon publishes (`fleet.queue_depth{shard="sort"}`).
///
/// The `counter!`/`gauge!` macros declare one `&'static` cell per call
/// site, which cannot express a label set only known at runtime. Labeled
/// series instead live in one mutex-protected map keyed by the full
/// rendered series name, are created on first record, merge into
/// [`metrics_snapshot`] alongside the static metrics, and are cleared by
/// [`reset`]. They cost a lock plus a map lookup per record — fine for
/// per-snapshot daemon accounting, not for interpreter-hot paths.
struct LabeledRegistry {
    counters: Mutex<std::collections::BTreeMap<String, u64>>,
    gauges: Mutex<std::collections::BTreeMap<String, i64>>,
}

fn labeled() -> &'static LabeledRegistry {
    static LABELED: OnceLock<LabeledRegistry> = OnceLock::new();
    LABELED.get_or_init(|| LabeledRegistry {
        counters: Mutex::new(std::collections::BTreeMap::new()),
        gauges: Mutex::new(std::collections::BTreeMap::new()),
    })
}

/// The full series name of a labeled metric:
/// `name{label="value"}`. Quotes and backslashes in the value are
/// replaced with `_` so the rendered name always stays one
/// Prometheus-parseable token.
#[must_use = "the rendered series name is the result; use it"]
pub fn series_name(name: &str, label: &str, value: &str) -> String {
    let clean: String = value
        .chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect();
    format!("{name}{{{label}=\"{clean}\"}}")
}

/// Adds to a labeled counter, creating the series on first record.
pub fn labeled_counter_add(name: &str, label: &str, value: &str, delta: u64) {
    if !enabled() {
        return;
    }
    let key = series_name(name, label, value);
    *labeled()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .entry(key)
        .or_insert(0) += delta;
}

/// Sets a labeled gauge level, creating the series on first record.
pub fn labeled_gauge_set(name: &str, label: &str, value: &str, level: i64) {
    if !enabled() {
        return;
    }
    let key = series_name(name, label, value);
    labeled()
        .gauges
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(key, level);
}

/// Pushes the calling thread's buffered spans to the global sink now,
/// instead of waiting for chunk overflow or thread exit.
///
/// Short-lived worker threads need this: `std::thread::scope` (and
/// `JoinHandle::join`) can observe a thread as finished while its TLS
/// destructors — including the buffer's exit flush — are still running,
/// so spans left to the destructor may land *after* the joining thread's
/// [`take_spans`]. Flushing as the last act inside the closure puts the
/// spans in the sink before the join completes.
pub fn flush_thread() {
    flush_local_spans();
}

/// Drains every finished span recorded so far. Spans of one thread stay
/// in order; spans still buffered by *other* live threads arrive at their
/// next flush (chunk overflow or thread exit).
///
/// Dropping the result silently discards the drained spans — export them.
#[must_use = "draining removes the spans; dropping the result loses them"]
pub fn take_spans() -> Vec<SpanRecord> {
    flush_local_spans();
    std::mem::take(&mut *registry().spans.lock().unwrap())
}

/// Zeroes every registered metric and drops all recorded spans. Counters
/// and histograms stay registered (they are statics).
pub fn reset() {
    for c in registry().counters.lock().unwrap().iter() {
        c.reset();
    }
    for h in registry().histograms.lock().unwrap().iter() {
        h.reset();
    }
    for g in registry().gauges.lock().unwrap().iter() {
        g.reset();
    }
    labeled()
        .counters
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clear();
    labeled()
        .gauges
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .clear();
    // Spans may still be batched in the thread-local buffers of *other*
    // live threads, where this thread cannot reach them. Bumping the
    // epoch invalidates those buffers in place: each one clears itself
    // the next time it is touched (push, flush or thread exit).
    SPAN_EPOCH.fetch_add(1, Ordering::Relaxed);
    let _ = LOCAL_SPANS.try_with(|l| l.borrow_mut().sync_epoch());
    registry().spans.lock().unwrap().clear();
    log::reset_events();
    status::clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Telemetry state is process-global; tests in this crate serialise on
    /// this lock so they can assert exact values.
    fn lock() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        guard
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _g = lock();
        let c = counter!("test.counter");
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(metrics_snapshot().counter("test.counter"), Some(42));
        set_enabled(false);
    }

    #[test]
    fn labeled_series_snapshot_and_reset() {
        let _g = lock();
        labeled_counter_add("test.fleet.shed", "shard", "sort", 3);
        labeled_counter_add("test.fleet.shed", "shard", "sort", 2);
        labeled_counter_add("test.fleet.shed", "shard", "apache", 1);
        labeled_gauge_set("test.fleet.depth", "shard", "sort", 7);
        labeled_gauge_set("test.fleet.depth", "shard", "sort", 4);
        let snap = metrics_snapshot();
        assert_eq!(snap.counter("test.fleet.shed{shard=\"sort\"}"), Some(5));
        assert_eq!(snap.counter("test.fleet.shed{shard=\"apache\"}"), Some(1));
        assert_eq!(snap.gauge("test.fleet.depth{shard=\"sort\"}"), Some(4));
        // Quotes/backslashes in values cannot break the series token.
        assert_eq!(
            series_name("n", "l", "a\"b\\c"),
            "n{l=\"a_b_c\"}".to_string()
        );
        reset();
        let snap = metrics_snapshot();
        assert_eq!(snap.counter("test.fleet.shed{shard=\"sort\"}"), None);
        assert_eq!(snap.gauge("test.fleet.depth{shard=\"sort\"}"), None);
        set_enabled(false);
    }

    #[test]
    fn same_name_call_sites_merge_into_one_snapshot_entry() {
        // Each macro invocation declares its own static, so the same name
        // registered from two call sites must still snapshot as ONE entry
        // with summed values — not two rows that downstream JSON objects
        // would dedupe arbitrarily.
        let _g = lock();
        counter!("test.dup.counter").add(2);
        counter!("test.dup.counter").add(3);
        gauge!("test.dup.gauge").add(4);
        gauge!("test.dup.gauge").add(-1);
        histogram!("test.dup.histogram").record(1);
        histogram!("test.dup.histogram").record(1000);
        let m = metrics_snapshot();
        let rows = |name: &str| m.counters.iter().filter(|(n, _)| n == name).count();
        assert_eq!(rows("test.dup.counter"), 1);
        assert_eq!(m.counter("test.dup.counter"), Some(5));
        assert_eq!(
            m.gauges
                .iter()
                .filter(|(n, _)| n == "test.dup.gauge")
                .count(),
            1
        );
        assert_eq!(m.gauge("test.dup.gauge"), Some(3));
        let hists = m
            .histograms
            .iter()
            .filter(|h| h.name == "test.dup.histogram")
            .count();
        assert_eq!(hists, 1);
        let h = m.histogram("test.dup.histogram").expect("registered");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1001);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        set_enabled(false);
    }

    #[test]
    fn gauges_move_both_ways_and_snapshot() {
        let _g = lock();
        let g = gauge!("test.gauge");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(metrics_snapshot().gauge("test.gauge"), Some(3));
        g.set(-7);
        assert_eq!(metrics_snapshot().gauge("test.gauge"), Some(-7));
        reset();
        assert_eq!(g.get(), 0);
        set_enabled(false);
    }

    #[test]
    fn disabled_mode_is_a_true_noop() {
        let _g = lock();
        set_enabled(false);
        let c = counter!("test.disabled.counter");
        let h = histogram!("test.disabled.histogram");
        let ga = gauge!("test.disabled.gauge");
        c.add(5);
        h.record(5);
        ga.add(5);
        ga.set(9);
        assert_eq!(ga.get(), 0);
        instant("test.disabled.instant", "test");
        {
            let _s = span("test.disabled.span");
        }
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        let m = metrics_snapshot();
        assert_eq!(m.counter("test.disabled.counter"), None);
        assert!(m.histogram("test.disabled.histogram").is_none());
        assert_eq!(m.gauge("test.disabled.gauge"), None);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = lock();
        let h = histogram!("test.histogram");
        for v in [0u64, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        let m = metrics_snapshot();
        let s = m.histogram("test.histogram").expect("registered");
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1013);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the two ones
        assert_eq!(s.buckets[2], 1); // 3 in [2,4)
        assert_eq!(s.buckets[4], 1); // 8 in [8,16)
        assert_eq!(s.buckets[10], 1); // 1000 in [512,1024)
        assert_eq!(s.quantile(0.5), 1); // rank 3 of 6 lands in the [1,2) bucket
        assert!(s.quantile(1.0) >= 1000);
        assert!((s.mean() - 1013.0 / 6.0).abs() < 1e-9);
        set_enabled(false);
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn spans_nest_and_record_durations() {
        let _g = lock();
        {
            let _outer = span_cat("test.outer", "test");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span_cat("test.inner", "test");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            instant("test.marker", "test");
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        // Inner closes first, then the marker fires, then outer closes.
        let inner = &spans[0];
        let marker = &spans[1];
        let outer = &spans[2];
        assert_eq!(inner.name, "test.inner");
        assert_eq!(marker.name, "test.marker");
        assert_eq!(marker.dur_us, None);
        assert_eq!(outer.name, "test.outer");
        assert!(outer.start_us <= inner.start_us);
        let (od, id) = (outer.dur_us.unwrap(), inner.dur_us.unwrap());
        assert!(od >= id, "outer {od}us shorter than inner {id}us");
        assert!(outer.start_us + od >= inner.start_us + id);
        assert_eq!(inner.tid, outer.tid);
        set_enabled(false);
    }

    #[test]
    fn delta_since_diffs_counters() {
        let _g = lock();
        let c = counter!("test.delta");
        c.add(10);
        let before = metrics_snapshot();
        c.add(7);
        let after = metrics_snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.counter("test.delta"), Some(7));
        set_enabled(false);
    }

    #[test]
    fn delta_since_covers_histograms_and_gauges() {
        let _g = lock();
        let h = histogram!("test.delta.histogram");
        let g = gauge!("test.delta.gauge");
        let quiet = counter!("test.delta.quiet");
        h.record(3);
        h.record(100);
        g.add(5);
        quiet.add(2);
        let before = metrics_snapshot();
        h.record(3);
        h.record(40);
        g.add(-3);
        let after = metrics_snapshot();
        let delta = after.delta_since(&before);

        let hd = delta.histogram("test.delta.histogram").expect("present");
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 43);
        assert_eq!(hd.buckets[2], 1, "one new sample in [2,4)");
        assert_eq!(hd.buckets[6], 1, "one new sample in [32,64)");
        assert_eq!(hd.buckets[7], 0, "the pre-window 100 subtracted out");
        // Extrema are whole-process, not per-window.
        assert_eq!((hd.min, hd.max), (3, 100));

        assert_eq!(delta.gauge("test.delta.gauge"), Some(-3));
        // Untouched metrics drop out of the delta entirely.
        assert_eq!(delta.counter("test.delta.quiet"), None);
        let quiet_hist = delta.histograms.iter().filter(|h| h.count == 0).count();
        assert_eq!(quiet_hist, 0, "empty histogram deltas are dropped");
        set_enabled(false);
    }

    #[test]
    fn quantile_edge_cases() {
        // Empty snapshot: every quantile is 0.
        let empty = HistogramSnapshot {
            name: "e".to_string(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(empty.quantile(0.0), 0);
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.quantile(1.0), 0);

        // Single-bucket population: every quantile lands in that bucket.
        let mut single = empty.clone();
        single.name = "s".to_string();
        single.count = 10;
        single.sum = 50;
        single.min = 5;
        single.max = 7;
        single.buckets[3] = 10; // all samples in [4,8)
        assert_eq!(single.quantile(0.0), 7, "q=0 clamps to rank 1");
        assert_eq!(single.quantile(0.5), 7);
        assert_eq!(single.quantile(1.0), 7, "bucket upper bound 2^3-1");

        // q outside [0,1] clamps instead of panicking or overflowing.
        assert_eq!(single.quantile(-1.0), 7);
        assert_eq!(single.quantile(2.0), 7);

        // The top bucket saturates at u64::MAX.
        let mut top = empty.clone();
        top.count = 1;
        top.max = u64::MAX;
        top.buckets[64] = 1;
        assert_eq!(top.quantile(1.0), u64::MAX);
    }

    #[test]
    fn merge_edge_cases() {
        let empty = HistogramSnapshot {
            name: "m".to_string(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        };
        let mut low = empty.clone();
        low.count = 2;
        low.sum = 3;
        low.min = 1;
        low.max = 2;
        low.buckets[1] = 1;
        low.buckets[2] = 1;
        let mut high = empty.clone();
        high.count = 1;
        high.sum = 1000;
        high.min = 1000;
        high.max = 1000;
        high.buckets[10] = 1;

        // Merging an empty snapshot changes nothing.
        let mut m = low.clone();
        m.merge(&empty);
        assert_eq!(m, low);

        // Merging *into* an empty snapshot adopts the other wholesale
        // (in particular min must not stay at the empty sentinel 0).
        let mut m = empty.clone();
        m.merge(&high);
        assert_eq!((m.count, m.min, m.max), (1, 1000, 1000));

        // Disjoint bucket ranges: totals sum, extrema span both, and the
        // occupied buckets stay disjoint.
        let mut m = low.clone();
        m.merge(&high);
        assert_eq!((m.count, m.sum), (3, 1003));
        assert_eq!((m.min, m.max), (1, 1000));
        assert_eq!((m.buckets[1], m.buckets[2], m.buckets[10]), (1, 1, 1));
        assert_eq!(m.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn spans_carry_ids_parents_and_flows() {
        let _g = lock();
        let flow = new_flow_id();
        {
            let _outer = span_cat("test.id.outer", "test");
            let _inner = span_cat("test.id.inner", "test").with_flow(flow, FlowPhase::Start);
            instant("test.id.marker", "test");
        }
        {
            let _after = span_cat("test.id.after", "test");
        }
        let spans = take_spans();
        let by_name = |n: &str| spans.iter().find(|s| s.name == n).expect("recorded");
        let outer = by_name("test.id.outer");
        let inner = by_name("test.id.inner");
        let marker = by_name("test.id.marker");
        let after = by_name("test.id.after");
        assert_ne!(outer.id, 0);
        assert_ne!(outer.id, inner.id, "span ids are unique");
        assert_eq!(outer.parent, 0, "top-level span has no parent");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(marker.parent, inner.id, "instants attach to the open span");
        assert_eq!(after.parent, 0, "drop restores the previous parent");
        assert_eq!(inner.flow, flow);
        assert_eq!(inner.flow_phase, Some(FlowPhase::Start));
        assert_eq!(outer.flow, 0);
        assert_eq!(outer.flow_phase, None);
        set_enabled(false);
    }

    #[test]
    fn events_buffer_in_order_and_drain() {
        let _g = lock();
        log::set_stderr_level(None); // keep test output clean
        log::info("test", "first", vec![("k", "v".to_string())]);
        log::warn("test", "second", vec![]);
        let peeked = log::recent_events(10);
        assert_eq!(peeked.len(), 2, "recent_events must not drain");
        let events = log::take_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, "first");
        assert_eq!(events[0].level, log::Level::Info);
        assert_eq!(events[0].fields, vec![("k", "v".to_string())]);
        assert_eq!(events[1].event, "second");
        assert!(events[0].ts_us <= events[1].ts_us);
        assert!(log::take_events().is_empty(), "drain empties the buffer");
        // Each event is one canonical JSONL line.
        let line = events[0].to_json().encode();
        let parsed = json::Json::parse(&line).expect("event line parses");
        assert_eq!(
            parsed.get("level").and_then(json::Json::as_str),
            Some("info")
        );
        assert_eq!(
            parsed
                .get("fields")
                .and_then(|f| f.get("k"))
                .and_then(json::Json::as_str),
            Some("v")
        );
        log::set_stderr_level(Some(log::Level::Warn));
        set_enabled(false);
    }

    #[test]
    fn events_do_not_buffer_while_disabled() {
        let _g = lock();
        log::set_stderr_level(None);
        set_enabled(false);
        log::error("test", "silent", vec![]);
        assert!(!log::would_log(log::Level::Error));
        set_enabled(true);
        assert!(log::take_events().is_empty());
        log::set_stderr_level(Some(log::Level::Warn));
        set_enabled(false);
    }

    #[test]
    fn event_buffer_is_bounded_and_counts_drops() {
        let _g = lock();
        log::set_stderr_level(None);
        for _ in 0..log::EVENT_CAPACITY + 5 {
            log::debug("test", "flood", vec![]);
        }
        assert_eq!(log::dropped_events(), 5);
        let events = log::take_events();
        assert_eq!(events.len(), log::EVENT_CAPACITY);
        reset();
        assert_eq!(log::dropped_events(), 0, "reset clears the drop count");
        log::set_stderr_level(Some(log::Level::Warn));
        set_enabled(false);
    }

    #[test]
    fn reset_keeps_gauge_and_delta_semantics_across_worker_flush() {
        // Regression companion to the epoch-stamped span-buffer fix: a
        // worker still running across a reset() must not resurrect
        // pre-reset state. Counters/gauges are registered statics, so a
        // post-reset snapshot must see exactly the post-reset activity,
        // and delta_since must never go negative (saturating) even when
        // the "earlier" snapshot predates the reset.
        let _g = lock();
        let before = {
            counter!("test.rst.counter").add(10);
            gauge!("test.rst.gauge").set(7);
            metrics_snapshot()
        };
        assert_eq!(before.gauge("test.rst.gauge"), Some(7));

        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            {
                let _s = span_cat("test.rst.stale", "test");
            }
            counter!("test.rst.counter").add(5);
            ready_tx.send(()).unwrap();
            go_rx.recv().unwrap();
            // Post-reset worker activity: the only state a subsequent
            // snapshot may observe.
            counter!("test.rst.counter").add(3);
            gauge!("test.rst.gauge").add(2);
            {
                let _s = span_cat("test.rst.fresh", "test");
            }
            flush_thread();
        });
        ready_rx.recv().unwrap();
        reset();
        go_tx.send(()).unwrap();
        worker.join().unwrap();

        let after = metrics_snapshot();
        assert_eq!(after.counter("test.rst.counter"), Some(3));
        assert_eq!(after.gauge("test.rst.gauge"), Some(2));
        // Diffing across a reset: counters saturate to zero-and-drop
        // rather than underflowing; the gauge reports the level change.
        let delta = after.delta_since(&before);
        assert_eq!(delta.counter("test.rst.counter"), None);
        assert_eq!(delta.gauge("test.rst.gauge"), Some(-5));
        let names: Vec<_> = take_spans().iter().map(|s| s.name).collect();
        assert!(!names.contains(&"test.rst.stale"), "{names:?}");
        assert!(names.contains(&"test.rst.fresh"), "{names:?}");
        set_enabled(false);
    }

    #[test]
    fn reset_discards_spans_batched_on_other_threads() {
        // Regression: reset() used to clear only the *calling* thread's
        // local buffer, so spans batched on a still-live worker thread
        // survived the reset and leaked into the next export.
        let _g = lock();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (go_tx, go_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            {
                let _s = span_cat("test.reset.stale", "test");
            }
            // The span is now batched in this thread's local buffer.
            ready_tx.send(()).unwrap();
            go_rx.recv().unwrap();
            // Touch the buffer again after the main thread's reset; the
            // epoch bump must discard the stale span here.
            {
                let _s = span_cat("test.reset.fresh", "test");
            }
        });
        ready_rx.recv().unwrap();
        reset();
        go_tx.send(()).unwrap();
        worker.join().unwrap();
        let names: Vec<_> = take_spans().iter().map(|s| s.name).collect();
        assert!(
            !names.contains(&"test.reset.stale"),
            "pre-reset span leaked through reset: {names:?}"
        );
        assert!(
            names.contains(&"test.reset.fresh"),
            "post-reset span must survive: {names:?}"
        );
        set_enabled(false);
    }
}
