//! # stm-telemetry — observability for the stm stack
//!
//! The paper's whole pitch is *observability on the cheap*: LBR/LCR rings
//! are hardware telemetry and LBRA/LCRA are statistical consumers of it.
//! This crate gives the reproduction the same property about itself —
//! always-compiled-in, near-zero-cost-when-off instrumentation of the
//! interpreter, the simulated hardware rings and the diagnosis pipeline.
//!
//! Three primitive kinds, all `std`-only and process-global:
//!
//! * [`Counter`] — a monotonically increasing atomic `u64`, declared at the
//!   use site with [`counter!`];
//! * [`Histogram`] — log2-bucketed value distribution (count, sum, min,
//!   max, percentile estimates), declared with [`histogram!`];
//! * spans — hierarchical RAII wall-clock timers created with [`span`] /
//!   [`span_cat`], recorded as Chrome `trace_event` complete events, plus
//!   zero-duration [`instant`] markers.
//!
//! Collection is gated by one global switch ([`set_enabled`]); when off,
//! every operation is a load of one relaxed atomic and an early return —
//! no locks, no allocation, no timestamps.
//!
//! Export lives in [`export`]: a human-readable summary table, a JSONL
//! metrics dump, and a Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or <https://ui.perfetto.dev>. A minimal JSON value
//! type with an encoder *and* parser lives in [`json`] (the build is
//! offline; no serde).
//!
//! ## Example
//!
//! ```
//! stm_telemetry::set_enabled(true);
//! {
//!     let _run = stm_telemetry::span("demo.phase");
//!     stm_telemetry::counter!("demo.events").add(3);
//!     stm_telemetry::histogram!("demo.latency_us").record(250);
//! }
//! let m = stm_telemetry::metrics_snapshot();
//! assert_eq!(m.counter("demo.events"), Some(3));
//! let trace = stm_telemetry::export::chrome_trace(&stm_telemetry::take_spans());
//! assert!(trace.contains("demo.phase"));
//! stm_telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod json;

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global collection switch. Relaxed is enough: telemetry is advisory and
/// never synchronises program data.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns collection on or off. Off is the default; when off every
/// instrumentation call is a true no-op (one relaxed atomic load).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether collection is currently enabled.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of log2 histogram buckets: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros), up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The global registry of every counter/histogram that has ever recorded
/// a value, plus the span sink.
struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    gauges: Mutex<Vec<&'static Gauge>>,
    spans: Mutex<Vec<SpanRecord>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        spans: Mutex::new(Vec::new()),
    })
}

/// Process-wide monotonic epoch; all span timestamps are microseconds
/// since the first telemetry event.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// A named monotonic counter. Declare one per site with [`counter!`]; the
/// static is registered globally on its first recorded increment.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Creates a zeroed counter (used by the [`counter!`] macro).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`; a no-op while collection is disabled.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(n, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.lock().unwrap().push(self);
        }
    }

    /// Adds one; a no-op while collection is disabled.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Declares (once) and returns a `&'static Counter` for this call site.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static COUNTER: $crate::Counter = $crate::Counter::new($name);
        &COUNTER
    }};
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A named log2-bucketed histogram of `u64` samples. Declare one per site
/// with [`histogram!`].
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// Creates an empty histogram (used by the [`histogram!`] macro).
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The bucket index of a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records a sample; a no-op while collection is disabled.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !enabled() {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().histograms.lock().unwrap().push(self);
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            name: self.name.to_string(),
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Declares (once) and returns a `&'static Histogram` for this call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HISTOGRAM: $crate::Histogram = $crate::Histogram::new($name);
        &HISTOGRAM
    }};
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// A named instantaneous level (queue depth, in-flight jobs, live workers):
/// unlike a [`Counter`] it moves both ways and snapshots report its
/// *current* value, not an accumulation. Declare one per site with
/// [`gauge!`].
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    /// Creates a zeroed gauge (used by the [`gauge!`] macro).
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Moves the level by `delta` (negative to lower it); a no-op while
    /// collection is disabled.
    #[inline]
    pub fn add(&'static self, delta: i64) {
        if !enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
        self.register();
    }

    /// Sets the level outright; a no-op while collection is disabled.
    #[inline]
    pub fn set(&'static self, v: i64) {
        if !enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
        self.register();
    }

    fn register(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().gauges.lock().unwrap().push(self);
        }
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Declares (once) and returns a `&'static Gauge` for this call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static GAUGE: $crate::Gauge = $crate::Gauge::new($name);
        &GAUGE
    }};
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers `[2^(i-1), 2^i)`, bucket 0 is
    /// exactly zero.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value, 0.0 when empty.
    #[must_use = "the computed mean is the result; use it"]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) as the upper bound of the
    /// bucket holding that rank — an over-estimate by at most 2x, which is
    /// the log2-bucket resolution.
    #[must_use = "the computed quantile is the result; use it"]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        self.max
    }

    /// Folds another snapshot of the *same* metric name into this one —
    /// used when several call-site statics share a histogram name.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, b) in other.buckets.iter().enumerate() {
            self.buckets[i] += b;
        }
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One finished span or instant marker, in Chrome `trace_event` terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Event name (`"lbra.ranking"`, ...).
    pub name: &'static str,
    /// Category (`"machine"`, `"hardware"`, `"diagnosis"`, ...).
    pub cat: &'static str,
    /// Logical thread id of the recording OS thread.
    pub tid: u64,
    /// Start, microseconds since the process telemetry epoch.
    pub start_us: u64,
    /// Duration in microseconds; `None` for instant markers.
    pub dur_us: Option<u64>,
}

fn thread_index() -> u64 {
    static NEXT: AtomicUsize = AtomicUsize::new(1);
    thread_local! {
        static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed) as u64;
    }
    INDEX.with(|i| *i)
}

/// Finished spans batch in a thread-local buffer and move to the global
/// sink in chunks, so span-heavy hot paths don't contend on one mutex.
const SPAN_FLUSH_THRESHOLD: usize = 128;

/// The buffer flushes on overflow and (via `Drop`) on thread exit.
struct LocalSpans(Vec<SpanRecord>);

impl Drop for LocalSpans {
    fn drop(&mut self) {
        if !self.0.is_empty() {
            registry().spans.lock().unwrap().append(&mut self.0);
        }
    }
}

thread_local! {
    static LOCAL_SPANS: std::cell::RefCell<LocalSpans> =
        const { std::cell::RefCell::new(LocalSpans(Vec::new())) };
}

fn push_span(rec: SpanRecord) {
    let mut rec = Some(rec);
    let _ = LOCAL_SPANS.try_with(|l| {
        let mut l = l.borrow_mut();
        l.0.push(rec.take().unwrap());
        if l.0.len() >= SPAN_FLUSH_THRESHOLD {
            registry().spans.lock().unwrap().append(&mut l.0);
        }
    });
    if let Some(r) = rec {
        // The thread-local is gone (thread teardown); sink directly.
        registry().spans.lock().unwrap().push(r);
    }
}

fn flush_local_spans() {
    let _ = LOCAL_SPANS.try_with(|l| {
        let mut l = l.borrow_mut();
        if !l.0.is_empty() {
            registry().spans.lock().unwrap().append(&mut l.0);
        }
    });
}

/// An RAII span: records a complete event from creation to drop. Created
/// by [`span`] / [`span_cat`]; inactive (fully free) when collection is
/// disabled at creation time.
#[derive(Debug)]
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
pub struct SpanGuard {
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let end = now_us();
        push_span(SpanRecord {
            name: self.name,
            cat: self.cat,
            tid: thread_index(),
            start_us: self.start_us,
            dur_us: Some(end.saturating_sub(self.start_us)),
        });
    }
}

/// Opens a span in the default category; closes when the guard drops.
pub fn span(name: &'static str) -> SpanGuard {
    span_cat(name, "stm")
}

/// Opens a span with an explicit category.
pub fn span_cat(name: &'static str, cat: &'static str) -> SpanGuard {
    let active = enabled();
    SpanGuard {
        name,
        cat,
        start_us: if active { now_us() } else { 0 },
        active,
    }
}

/// Records an instant marker (a zero-duration event).
pub fn instant(name: &'static str, cat: &'static str) {
    if !enabled() {
        return;
    }
    push_span(SpanRecord {
        name,
        cat,
        tid: thread_index(),
        start_us: now_us(),
        dur_us: None,
    });
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter.
    pub counters: Vec<(String, u64)>,
    /// Every registered histogram.
    pub histograms: Vec<HistogramSnapshot>,
    /// `(name, level)` for every registered gauge.
    pub gauges: Vec<(String, i64)>,
}

impl MetricsSnapshot {
    /// The value of a counter, when registered.
    #[must_use = "the looked-up value is the result; use it"]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// A histogram snapshot, when registered.
    #[must_use = "the looked-up snapshot is the result; use it"]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The level of a gauge, when registered.
    #[must_use = "the looked-up level is the result; use it"]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Per-counter difference against an earlier snapshot (counters are
    /// monotonic; missing-before counters diff against zero). Used by the
    /// table harnesses to attribute metrics to one benchmark.
    #[must_use = "the computed deltas are the result; use them"]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> Vec<(String, u64)> {
        self.counters
            .iter()
            .map(|(n, v)| (n.clone(), v - earlier.counter(n).unwrap_or(0)))
            .filter(|(_, v)| *v > 0)
            .collect()
    }
}

/// Copies out every registered counter and histogram.
///
/// The `counter!`/`gauge!`/`histogram!` macros declare one static per
/// *call site*, so the same metric name may be registered several times
/// (e.g. a counter bumped on both the sequential and the pooled path of
/// an engine). Snapshots merge same-name entries — counters and gauges
/// sum, histograms combine — so each name appears exactly once.
#[must_use = "snapshotting does not export anything by itself; use the returned snapshot"]
pub fn metrics_snapshot() -> MetricsSnapshot {
    let mut counters: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
    for c in registry().counters.lock().unwrap().iter() {
        *counters.entry(c.name.to_string()).or_insert(0) += c.get();
    }
    let mut histograms: std::collections::BTreeMap<String, HistogramSnapshot> =
        std::collections::BTreeMap::new();
    for h in registry().histograms.lock().unwrap().iter() {
        let snap = h.snapshot();
        match histograms.entry(snap.name.clone()) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(snap);
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&snap),
        }
    }
    let mut gauges: std::collections::BTreeMap<String, i64> = std::collections::BTreeMap::new();
    for g in registry().gauges.lock().unwrap().iter() {
        *gauges.entry(g.name.to_string()).or_insert(0) += g.get();
    }
    MetricsSnapshot {
        counters: counters.into_iter().collect(),
        histograms: histograms.into_values().collect(),
        gauges: gauges.into_iter().collect(),
    }
}

/// Drains every finished span recorded so far. Spans of one thread stay
/// in order; spans still buffered by *other* live threads arrive at their
/// next flush (chunk overflow or thread exit).
///
/// Dropping the result silently discards the drained spans — export them.
#[must_use = "draining removes the spans; dropping the result loses them"]
pub fn take_spans() -> Vec<SpanRecord> {
    flush_local_spans();
    std::mem::take(&mut *registry().spans.lock().unwrap())
}

/// Zeroes every registered metric and drops all recorded spans. Counters
/// and histograms stay registered (they are statics).
pub fn reset() {
    for c in registry().counters.lock().unwrap().iter() {
        c.reset();
    }
    for h in registry().histograms.lock().unwrap().iter() {
        h.reset();
    }
    for g in registry().gauges.lock().unwrap().iter() {
        g.reset();
    }
    let _ = LOCAL_SPANS.try_with(|l| l.borrow_mut().0.clear());
    registry().spans.lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Telemetry state is process-global; tests in this crate serialise on
    /// this lock so they can assert exact values.
    fn lock() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        guard
    }

    #[test]
    fn counters_accumulate_and_snapshot() {
        let _g = lock();
        let c = counter!("test.counter");
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        assert_eq!(metrics_snapshot().counter("test.counter"), Some(42));
        set_enabled(false);
    }

    #[test]
    fn same_name_call_sites_merge_into_one_snapshot_entry() {
        // Each macro invocation declares its own static, so the same name
        // registered from two call sites must still snapshot as ONE entry
        // with summed values — not two rows that downstream JSON objects
        // would dedupe arbitrarily.
        let _g = lock();
        counter!("test.dup.counter").add(2);
        counter!("test.dup.counter").add(3);
        gauge!("test.dup.gauge").add(4);
        gauge!("test.dup.gauge").add(-1);
        histogram!("test.dup.histogram").record(1);
        histogram!("test.dup.histogram").record(1000);
        let m = metrics_snapshot();
        let rows = |name: &str| m.counters.iter().filter(|(n, _)| n == name).count();
        assert_eq!(rows("test.dup.counter"), 1);
        assert_eq!(m.counter("test.dup.counter"), Some(5));
        assert_eq!(
            m.gauges
                .iter()
                .filter(|(n, _)| n == "test.dup.gauge")
                .count(),
            1
        );
        assert_eq!(m.gauge("test.dup.gauge"), Some(3));
        let hists = m
            .histograms
            .iter()
            .filter(|h| h.name == "test.dup.histogram")
            .count();
        assert_eq!(hists, 1);
        let h = m.histogram("test.dup.histogram").expect("registered");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1001);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        set_enabled(false);
    }

    #[test]
    fn gauges_move_both_ways_and_snapshot() {
        let _g = lock();
        let g = gauge!("test.gauge");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(metrics_snapshot().gauge("test.gauge"), Some(3));
        g.set(-7);
        assert_eq!(metrics_snapshot().gauge("test.gauge"), Some(-7));
        reset();
        assert_eq!(g.get(), 0);
        set_enabled(false);
    }

    #[test]
    fn disabled_mode_is_a_true_noop() {
        let _g = lock();
        set_enabled(false);
        let c = counter!("test.disabled.counter");
        let h = histogram!("test.disabled.histogram");
        let ga = gauge!("test.disabled.gauge");
        c.add(5);
        h.record(5);
        ga.add(5);
        ga.set(9);
        assert_eq!(ga.get(), 0);
        instant("test.disabled.instant", "test");
        {
            let _s = span("test.disabled.span");
        }
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        let m = metrics_snapshot();
        assert_eq!(m.counter("test.disabled.counter"), None);
        assert!(m.histogram("test.disabled.histogram").is_none());
        assert_eq!(m.gauge("test.disabled.gauge"), None);
        assert!(take_spans().is_empty());
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _g = lock();
        let h = histogram!("test.histogram");
        for v in [0u64, 1, 1, 3, 8, 1000] {
            h.record(v);
        }
        let m = metrics_snapshot();
        let s = m.histogram("test.histogram").expect("registered");
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1013);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the two ones
        assert_eq!(s.buckets[2], 1); // 3 in [2,4)
        assert_eq!(s.buckets[4], 1); // 8 in [8,16)
        assert_eq!(s.buckets[10], 1); // 1000 in [512,1024)
        assert_eq!(s.quantile(0.5), 1); // rank 3 of 6 lands in the [1,2) bucket
        assert!(s.quantile(1.0) >= 1000);
        assert!((s.mean() - 1013.0 / 6.0).abs() < 1e-9);
        set_enabled(false);
    }

    #[test]
    fn bucket_of_is_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn spans_nest_and_record_durations() {
        let _g = lock();
        {
            let _outer = span_cat("test.outer", "test");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span_cat("test.inner", "test");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            instant("test.marker", "test");
        }
        let spans = take_spans();
        assert_eq!(spans.len(), 3);
        // Inner closes first, then the marker fires, then outer closes.
        let inner = &spans[0];
        let marker = &spans[1];
        let outer = &spans[2];
        assert_eq!(inner.name, "test.inner");
        assert_eq!(marker.name, "test.marker");
        assert_eq!(marker.dur_us, None);
        assert_eq!(outer.name, "test.outer");
        assert!(outer.start_us <= inner.start_us);
        let (od, id) = (outer.dur_us.unwrap(), inner.dur_us.unwrap());
        assert!(od >= id, "outer {od}us shorter than inner {id}us");
        assert!(outer.start_us + od >= inner.start_us + id);
        assert_eq!(inner.tid, outer.tid);
        set_enabled(false);
    }

    #[test]
    fn delta_since_diffs_counters() {
        let _g = lock();
        let c = counter!("test.delta");
        c.add(10);
        let before = metrics_snapshot();
        c.add(7);
        let after = metrics_snapshot();
        let delta = after.delta_since(&before);
        assert!(delta.contains(&("test.delta".to_string(), 7)));
        set_enabled(false);
    }
}
