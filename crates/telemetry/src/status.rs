//! Named live-status documents: small JSON blobs a subsystem publishes
//! for observers to read (e.g. the engine's convergence monitor feeding
//! the observatory's `/diagnosis` endpoint).
//!
//! Unlike counters/gauges (cumulative, summed across call sites) or the
//! event log (append-only history), a status document is
//! *last-writer-wins current state*: each `publish` replaces the
//! previous document under that name. Reads return a clone, so holders
//! never block publishers.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

fn store() -> &'static Mutex<BTreeMap<String, Json>> {
    static STORE: OnceLock<Mutex<BTreeMap<String, Json>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Publishes (replacing any previous) the document under `name`.
pub fn publish(name: &str, doc: Json) {
    store()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .insert(name.to_string(), doc);
}

/// The current document under `name`, if one has been published.
pub fn get(name: &str) -> Option<Json> {
    store()
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .get(name)
        .cloned()
}

/// Removes every published document (part of [`crate::reset`]).
pub fn clear() {
    store().lock().unwrap_or_else(|p| p.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_replaces_and_get_clones() {
        clear();
        assert_eq!(get("doc"), None);
        publish("doc", Json::from(1u64));
        assert_eq!(get("doc"), Some(Json::from(1u64)));
        publish("doc", Json::from("two"));
        assert_eq!(get("doc"), Some(Json::from("two")), "last writer wins");
        clear();
        assert_eq!(get("doc"), None, "clear removes everything");
    }
}
