//! Diagnosis latency (§7.2): how many failure occurrences each system
//! needs before it can rank the root cause. LBRA uses 10; sampling-based
//! CBI needs hundreds to thousands.
//!
//! Run with: `cargo run --release --example cbi_vs_lbra`

use stm::suite::eval::run_lbra;
use stm_bench::{cbi_rank, mark};

fn main() {
    let b = stm::suite::by_id("mv").expect("mv benchmark");
    println!("benchmark: {} — {}\n", b.info.id, b.info.description);
    let root = b.truth.target_branch().unwrap();

    let d = run_lbra(&b);
    println!(
        "LBRA: rank {} after {} failing runs",
        mark(d.rank_of_branch(root)),
        d.stats.failure_runs_used
    );

    for runs in [10, 100, 1000] {
        let r = cbi_rank(&b, runs, runs);
        println!(
            "CBI @ {runs:>4} failing runs (1/100 sampling): rank {}",
            mark(r)
        );
    }
    println!("\nThe LBR snapshot captures the root cause deterministically at the");
    println!("first failure; a sampled predicate must get lucky many times over.");
}
