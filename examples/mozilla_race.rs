//! The paper's Fig. 4 walkthrough: the Mozilla JavaScript atomicity
//! violation, diagnosed with the proposed LCR hardware — LCRLOG's
//! coherence-event log, then LCRA's automatic ranking.
//!
//! Run with: `cargo run --example mozilla_race`

use stm::core::logging::{failure_log_for, render_failure_log};
use stm::machine::events::LcrConfig;
use stm::suite::eval::{expand_workloads, lcrlog_runner, run_lcra};

fn main() {
    let b = stm::suite::by_id("mozilla-js3").expect("mozilla-js3 benchmark");
    println!("benchmark: {} — {}\n", b.info.id, b.info.description);

    // 1. LCRLOG under the space-saving configuration: the failing
    //    interleaving's last coherence events.
    let runner = lcrlog_runner(&b, LcrConfig::SPACE_SAVING);
    let (failing, _) = expand_workloads(&b, &runner);
    println!(
        "found {} failing interleavings by seed search",
        failing.len()
    );
    let (report, _) = runner.run_classified(&failing[0], &b.truth.spec);
    let log = failure_log_for(&runner, &report, &b.truth.spec).expect("failure profile");
    print!("{}", render_failure_log(&runner, &log));
    let fpe = b.truth.fpe.unwrap();
    println!(
        "\nthe invalid read at {} — st->table was nulled by FreeState between\nInitState's assignment and check — sits at entry {} (paper: 3)\n",
        runner.machine().program().render_loc(fpe.loc),
        log.lcr_position_of_event(fpe.loc, fpe.conf1_state.unwrap())
            .unwrap()
    );

    // 2. LCRA: automatic localization from 10 + 10 runs.
    let d = run_lcra(&b);
    println!("LCRA top predictors:");
    for (i, r) in d.ranked.iter().take(3).enumerate() {
        println!(
            "  #{} {} [{:?}] (precision {:.2}, recall {:.2})",
            i + 1,
            r.event,
            r.polarity,
            r.precision,
            r.recall
        );
    }
    println!(
        "\nrank of the failure-predicting event: {} (paper: 1)",
        d.rank_of_event(fpe.loc, fpe.conf2_state.unwrap()).unwrap()
    );
}
