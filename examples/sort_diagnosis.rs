//! The paper's Fig. 3 walkthrough: the Coreutils `sort -m` buffer overflow,
//! diagnosed end to end — LBRLOG's enhanced crash log first, then LBRA's
//! automatic root-cause ranking from 10 failing + 10 passing runs.
//!
//! Run with: `cargo run --example sort_diagnosis`

use stm::core::logging::{failure_log_for, render_failure_log};
use stm::suite::eval::{expand_workloads, lbrlog_runner, run_lbra};

fn main() {
    let b = stm::suite::by_id("sort").expect("sort benchmark");
    println!("benchmark: {} — {}\n", b.info.id, b.info.description);

    // 1. LBRLOG: what the developer sees attached to the crash report.
    let runner = lbrlog_runner(&b, true);
    let (failing, _) = expand_workloads(&b, &runner);
    let (report, _) = runner.run_classified(&failing[0], &b.truth.spec);
    let log = failure_log_for(&runner, &report, &b.truth.spec).expect("crash profile");
    print!("{}", render_failure_log(&runner, &log));
    let root = b.truth.target_branch().unwrap();
    println!(
        "\nroot-cause branch {} is the {}-th latest LBR entry (paper: 3rd)\n",
        root,
        log.lbr_position_of_branch(root).unwrap()
    );

    // 2. LBRA: automatic localization.
    let d = run_lbra(&b);
    println!(
        "LBRA used {} failing + {} passing runs; top predictors:",
        d.stats.failure_runs_used, d.stats.success_runs_used
    );
    for (i, r) in d.ranked.iter().take(3).enumerate() {
        println!(
            "  #{} {} (precision {:.2}, recall {:.2})",
            i + 1,
            r.event,
            r.precision,
            r.recall
        );
    }
    println!(
        "\nrank of the root-cause branch: {} (paper: 1)",
        d.rank_of_branch(root).unwrap()
    );
}
