//! The read-too-early / read-too-late order violations of Figs. 5 and 6
//! (FFT and PBZIP2), including the §4.2.2 subtlety: under the space-saving
//! LCR configuration, a read-too-early failure is predicted by the
//! *absence* of the shared-state read that every success run records.
//!
//! Run with: `cargo run --example order_violations`

use stm::suite::eval::{evaluate_concurrency, run_lcra};

fn main() {
    for id in ["fft", "pbzip3"] {
        let b = stm::suite::by_id(id).unwrap();
        println!("== {} — {}", b.info.id, b.info.description);
        let row = evaluate_concurrency(&b);
        println!(
            "   LCRLOG Conf1 entry: {:?}   Conf2 entry: {:?}   LCRA rank: {:?}",
            row.lcrlog_conf1, row.lcrlog_conf2, row.lcra
        );
        let d = run_lcra(&b);
        if let Some(top) = d.top() {
            println!(
                "   top predictor: {} [{:?}] score {:.2}\n",
                top.event, top.polarity, top.score
            );
        }
    }
}
