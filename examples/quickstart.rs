//! Quickstart: build a tiny buggy program, deploy it with LBRLOG, crash
//! it, and read the enhanced failure log a developer would receive.
//!
//! Run with: `cargo run --example quickstart`

use stm::core::prelude::*;
use stm::machine::builder::ProgramBuilder;

fn main() {
    // A program that dereferences a null pointer when its input is zero.
    let mut pb = ProgramBuilder::new("quickstart");
    let table = pb.global("table", 1);
    let main_fn = pb.declare_function("main");
    let mut f = pb.build_function(main_fn, "quickstart.c");
    let init = f.new_block();
    let lookup = f.new_block();
    let x = f.read_input(0);
    f.at(10);
    f.br(x, init, lookup); // root cause: skips initialization when x == 0
    f.set_block(init);
    f.at(12);
    let buf = f.alloc(4);
    f.store(buf, 0, 42);
    f.store(table as i64, 0, buf);
    f.jmp(lookup);
    f.set_block(lookup);
    f.at(20);
    let t = f.load(table as i64, 0);
    let v = f.load(t, 0); // crashes when table was never initialized
    f.output(v);
    f.ret(None);
    f.finish();
    let program = pb.finish(main_fn);

    // Deploy with LBRLOG: the fault handler profiles the LBR.
    let runner = Runner::instrumented(&program, &InstrumentOptions::lbrlog());

    println!("== healthy run (input 7) ==");
    let ok = runner.run(&Workload::new(vec![7]));
    println!("outputs: {:?}\n", ok.outputs);

    println!("== failing run (input 0) ==");
    let report = runner.run(&Workload::new(vec![0]));
    let log = failure_log(&runner, &report).expect("the run crashed");
    print!("{}", render_failure_log(&runner, &log));
    println!("\nThe most recent conditional branch is the root cause: the");
    println!("guard at quickstart.c:10 took its FALSE edge and skipped init.");
}
